"""Point-to-point forwarding channels and the signal address buffer.

Implements the runtime half of the paper's Section 2.2 protocol:

* ``signal`` sends a word from epoch *k* to epoch *k+1* over a named
  channel; memory-resident groups send an address message followed by a
  value message.
* ``wait`` blocks the consumer until the matching message arrives.
* The **signal address buffer** records each forwarded address in the
  producer; when a later store of the same epoch writes a recorded
  address, the corrected value replaces the in-flight message and, if
  the consumer already consumed the stale one, the consumer is
  restarted ("the producer ... will notice that it is storing to an
  address that is already in the signal address buffer, and send a
  signal which restarts the consumer epoch").

Messages are tagged with the producer's run generation so that a
squashed producer's messages can be withdrawn wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(slots=True)
class Message:
    """One forwarded word."""

    kind: str           # 'value' or 'addr'
    payload: int
    send_time: float
    producer_epoch: int
    producer_generation: int
    #: generation of the consumer run that consumed this message, if any
    consumed_gen: int = -1


class ChannelBank:
    """All channel state for one region execution.

    With an event ``bus`` attached, each send emits ``fwd_send`` and
    each in-flight correction emits ``fwd_replace`` (region-start
    channel seeds, recognizable by their ``-inf`` send time, are
    setup, not communication, and stay silent).
    """

    def __init__(self, forward_latency: float, bus=None):
        self.forward_latency = forward_latency
        self.bus = bus
        # (channel, consumer_epoch) -> messages in arrival order
        self._queues: Dict[Tuple[str, int], List[Message]] = {}
        # consumer_epoch -> the queue lists above that deliver to it;
        # keeps squash-time withdrawal from scanning every channel.
        self._by_consumer: Dict[int, List[List[Message]]] = {}

    @classmethod
    def for_machine(cls, machine, bus=None) -> "ChannelBank":
        """Bank wired to the machine's crossbar forwarding latency."""
        return cls(machine.forward_latency, bus=bus)

    # -- producer side ----------------------------------------------------

    def send(
        self,
        channel: str,
        consumer_epoch: int,
        kind: str,
        payload: int,
        time: float,
        producer_epoch: int,
        generation: int,
    ) -> Message:
        message = Message(
            kind=kind,
            payload=payload,
            send_time=time,
            producer_epoch=producer_epoch,
            producer_generation=generation,
        )
        key = (channel, consumer_epoch)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = []
            self._by_consumer.setdefault(consumer_epoch, []).append(queue)
        queue.append(message)
        if self.bus is not None and time != float("-inf"):
            self.bus.emit(
                "fwd_send",
                time,
                epoch=producer_epoch,
                generation=generation,
                channel=channel,
                msg_kind=kind,
                payload=payload,
                consumer=consumer_epoch,
            )
        return message

    def seed(self, channel: str, consumer_epoch: int, kind: str, payload: int) -> None:
        """Pre-load a channel for epoch 0 (values live at region start)."""
        self.send(
            channel,
            consumer_epoch,
            kind,
            payload,
            time=float("-inf"),
            producer_epoch=-1,
            generation=0,
        )

    def replace_last(
        self,
        channel: str,
        consumer_epoch: int,
        kind: str,
        payload: int,
        time: float,
    ) -> Optional[Message]:
        """Overwrite the newest ``kind`` message (signal-buffer hit).

        Returns the replaced message (so the caller can check whether
        the stale value had already been consumed), or None when no
        message of that kind is pending.
        """
        queue = self._queues.get((channel, consumer_epoch), [])
        for message in reversed(queue):
            if message.kind == kind:
                replaced = Message(
                    kind=message.kind,
                    payload=message.payload,
                    send_time=message.send_time,
                    producer_epoch=message.producer_epoch,
                    producer_generation=message.producer_generation,
                    consumed_gen=message.consumed_gen,
                )
                message.payload = payload
                message.send_time = max(message.send_time, time)
                message.consumed_gen = -1
                if self.bus is not None:
                    self.bus.emit(
                        "fwd_replace",
                        time,
                        epoch=message.producer_epoch,
                        generation=message.producer_generation,
                        channel=channel,
                        msg_kind=kind,
                        payload=payload,
                        consumer=consumer_epoch,
                    )
                return replaced
        return None

    def withdraw_generation(self, producer_epoch: int, generation: int) -> None:
        """Drop every message a squashed producer run sent.

        Messages only ever travel to the producer's successor epoch
        (point-to-point forwarding down the epoch chain), so only the
        successor's queues need scanning.
        """
        for queue in self._by_consumer.get(producer_epoch + 1, ()):
            if any(
                m.producer_epoch == producer_epoch
                and m.producer_generation == generation
                for m in queue
            ):
                queue[:] = [
                    m
                    for m in queue
                    if not (
                        m.producer_epoch == producer_epoch
                        and m.producer_generation == generation
                    )
                ]

    # -- consumer side ------------------------------------------------------

    def peek(
        self, channel: str, consumer_epoch: int, kind: str, cursor: int
    ) -> Optional[Message]:
        """The ``cursor``-th message of ``kind``, if it exists."""
        queue = self._queues.get((channel, consumer_epoch), [])
        seen = 0
        for message in queue:
            if message.kind != kind:
                continue
            if seen == cursor:
                return message
            seen += 1
        return None

    def arrival_time(self, message: Message) -> float:
        if message.send_time == float("-inf"):
            return float("-inf")
        return message.send_time + self.forward_latency


class SignalAddressBuffer:
    """Per-epoch record of forwarded addresses (paper: <= 10 entries).

    Maps forwarded address -> channel so a conflicting later store can
    locate the message to correct.  Overflow falls back to restarting
    the consumer unconditionally (never observed with paper-sized
    programs; the experiments confirm <= 10 live entries).
    """

    def __init__(self, capacity: int = 10):
        if capacity < 1:
            raise ValueError(
                "signal address buffer capacity must be >= 1 "
                f"(got {capacity})"
            )
        self.capacity = capacity
        self._entries: Dict[int, str] = {}
        self.high_water = 0
        self.overflowed = False

    @classmethod
    def for_machine(cls, machine) -> "SignalAddressBuffer":
        """Buffer sized to the machine's SAB capacity."""
        return cls(machine.signal_buffer_entries)

    def record(self, addr: int, channel: str) -> None:
        if addr == 0:
            return  # NULL forwards need no write-conflict tracking
        if addr not in self._entries and len(self._entries) >= self.capacity:
            self.overflowed = True
        self._entries[addr] = channel
        self.high_water = max(self.high_water, len(self._entries))

    def channel_for(self, addr: int) -> Optional[str]:
        return self._entries.get(addr)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
