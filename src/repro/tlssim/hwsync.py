"""Hardware-inserted synchronization (the paper's H bars, after [25]).

The hardware tracks loads that have caused speculation to fail in a
small table (32 entries in [25]).  When a speculative epoch issues a
load whose (static) identity is in the table with enough recorded
violations, the load is stalled "until the previous epoch completes" —
i.e. until the epoch becomes the oldest in flight — instead of being
issued speculatively.  To avoid over-synchronizing loads whose
dependences die out, the table is periodically reset (paper Section
4.2: "we periodically reset the table that tracks the loads that have
caused speculation to fail").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class ViolatingLoadTable:
    """LRU table of load ids that caused violations, with periodic reset."""

    def __init__(
        self,
        size: int = 32,
        threshold: int = 2,
        reset_interval: int = 64,
        persistent=(),
        bus=None,
    ):
        if size < 1:
            raise ValueError("table size must be >= 1")
        self.size = size
        self.bus = bus
        self.threshold = threshold
        self.reset_interval = reset_interval
        #: Load ids the compiler hints as frequently violating (paper
        #: Section 4.2 refinement (iv)): the periodic reset keeps their
        #: entries, so the hardware never "forgets" a known-hot load.
        self.persistent = frozenset(persistent)
        self._counts: "OrderedDict[int, int]" = OrderedDict()
        self._commits_since_reset = 0
        self.resets = 0
        self.insertions = 0

    @classmethod
    def for_config(cls, config, persistent=(), bus=None) -> "ViolatingLoadTable":
        """Table sized/tuned from a :class:`SimConfig`'s hwsync knobs.

        The table is scheme hardware ([25]'s mechanism), so its knobs
        live on ``SimConfig`` next to the other hw_sync flags rather
        than on the structural ``MachineConfig`` — but construction is
        centralized here so sweeps overriding those knobs flow through
        one seam.
        """
        return cls(
            size=config.hw_table_size,
            threshold=config.hw_sync_threshold,
            reset_interval=config.hw_reset_interval,
            persistent=persistent,
            bus=bus,
        )

    def record_violation(self, load_iid: Optional[int]) -> None:
        """Note that ``load_iid`` caused a speculation failure."""
        if load_iid is None:
            return
        if load_iid in self._counts:
            self._counts[load_iid] += 1
            self._counts.move_to_end(load_iid)
        else:
            self._counts[load_iid] = 1
            self.insertions += 1
            if len(self._counts) > self.size:
                self._counts.popitem(last=False)
        if self.bus is not None:
            self.bus.emit(
                "hwsync_insert",
                load_iid=load_iid,
                count=self._counts[load_iid],
            )

    def should_synchronize(self, load_iid: Optional[int]) -> bool:
        """True when the hardware would stall this load."""
        if load_iid is None:
            return False
        count = self._counts.get(load_iid)
        return count is not None and count >= self.threshold

    def is_tracked(self, load_iid: Optional[int]) -> bool:
        return load_iid is not None and load_iid in self._counts

    def on_commit(self) -> None:
        """Advance the periodic-reset clock by one committed epoch."""
        self._commits_since_reset += 1
        if self.reset_interval and self._commits_since_reset >= self.reset_interval:
            kept = OrderedDict(
                (iid, count)
                for iid, count in self._counts.items()
                if iid in self.persistent
            )
            self._counts = kept
            self._commits_since_reset = 0
            self.resets += 1
            if self.bus is not None:
                self.bus.emit("hwsync_reset", kept=len(kept))

    def __len__(self) -> int:
        return len(self._counts)
