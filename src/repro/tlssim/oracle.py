"""Value oracles for the idealized forwarding experiments.

The paper's limit studies (Figure 2's O bars, Figure 6's frequency
sweep, Figure 9's E bars) model *perfect* value communication: chosen
loads always receive the value they would see in a sequential
execution, with no stall and no violation.  We realize this by running
the program sequentially first and recording, for every parallelized
region instance and epoch, the value of each dynamic load — keyed by
(load origin id, occurrence number within the epoch).  The TLS engine
replays those values for the oracled load set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.interpreter import Hooks, Interpreter
from repro.ir.module import Module

#: (load iid, occurrence-within-epoch) -> value
EpochValues = Dict[Tuple[int, int], int]


class OracleCollector(Hooks):
    """Interpreter hooks recording per-epoch load values."""

    def __init__(self):
        #: one entry per region instance, in dynamic encounter order
        self.regions: List[Dict[int, EpochValues]] = []
        self._current: Optional[Dict[int, EpochValues]] = None
        self._epoch: int = -1
        self._occurrence: Dict[int, int] = {}

    def on_region_enter(self, function, header, instance):
        self._current = {}
        self.regions.append(self._current)

    def on_epoch_start(self, epoch):
        self._epoch = epoch
        self._occurrence = {}
        if self._current is not None:
            self._current[epoch] = {}

    def on_region_exit(self, function, header, epochs):
        self._current = None

    def on_load(self, instr, stack, addr, value, epoch):
        if self._current is None or epoch is None:
            return
        load_id = instr.iid
        occurrence = self._occurrence.get(load_id, 0)
        self._occurrence[load_id] = occurrence + 1
        self._current[epoch][(load_id, occurrence)] = value


class ValueOracle:
    """Query interface over collected per-epoch load values."""

    def __init__(self, regions: List[Dict[int, EpochValues]]):
        self._regions = regions

    def lookup(
        self, region_index: int, epoch: int, load_iid: int, occurrence: int
    ) -> Optional[int]:
        """Sequentially-observed value, or None when outside the trace
        (e.g. control-speculated epochs beyond the loop exit)."""
        if region_index >= len(self._regions):
            return None
        epoch_values = self._regions[region_index].get(epoch)
        if epoch_values is None:
            return None
        return epoch_values.get((load_iid, occurrence))

    @property
    def region_count(self) -> int:
        return len(self._regions)


def collect_oracle(module: Module, fuel: int = 50_000_000) -> ValueOracle:
    """Run ``module`` sequentially and build its value oracle."""
    collector = OracleCollector()
    Interpreter(module, hooks=collector, fuel=fuel).run()
    return ValueOracle(collector.regions)
