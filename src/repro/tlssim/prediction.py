"""Hardware value prediction for violating loads (the P-family bars).

Per [25], value prediction targets loads that have caused violations:
instead of stalling, the consumer uses a predicted value for the load
and verifies it at commit time; a mispredict is a violation.  A
confidence counter gates predictions so cold or unstable loads are not
predicted.  The paper finds the last-value technique has
"insignificant effect on performance, indicating that forwarded
memory-resident values are unpredictable" — our reproduction keeps the
mechanism faithful so that result emerges rather than being
hard-coded.

Three prediction schemes live behind the :data:`PREDICTORS` registry,
selectable per bar (``P``/``PS``/``PC``) or per ``SimConfig.predictor``
and sweepable as a grid axis:

* ``last`` — :class:`LastValuePredictor`, the paper's scheme [25]:
  predict the last committed value of the load.
* ``stride`` — :class:`StridePredictor`: predict last value + the
  last observed stride (classic stride value prediction; catches
  induction-like memory values the last-value table always misses).
* ``context`` — :class:`ContextPredictor`: an order-2 finite context
  method (FCM) predictor in the spirit of Sazeides & Smith — the last
  two committed values of the load index a per-load value history
  table; repeating value *sequences* predict even when neither last
  value nor stride does.

All predictors share one interface (``predict`` / ``train`` /
``record_outcome`` / ``__len__``) and one confidence discipline:
``predict`` returns a value only at confidence >= the threshold,
``train`` saturates confidence at :data:`CONFIDENCE_MAX` and resets it
on disagreement, and tables are LRU-bounded per static load id.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

#: confidence counters saturate here (2-bit counters, as in [25])
CONFIDENCE_MAX = 3


@dataclass
class PredictionEntry:
    value: int
    confidence: int = 0


class _PredictorBase:
    """Shared outcome accounting + bus emission for every scheme."""

    def __init__(self, size: int = 32, confidence_threshold: int = 2, bus=None):
        self.size = size
        self.confidence_threshold = confidence_threshold
        self.bus = bus
        self.predictions_used = 0
        self.mispredictions = 0

    def record_outcome(self, correct: bool, load_iid: Optional[int] = None) -> None:
        self.predictions_used += 1
        if not correct:
            self.mispredictions += 1
        if self.bus is not None:
            self.bus.emit(
                "pred_hit" if correct else "pred_miss", load_iid=load_iid
            )


class LastValuePredictor(_PredictorBase):
    """LRU last-value table keyed by static load id."""

    def __init__(self, size: int = 32, confidence_threshold: int = 2, bus=None):
        super().__init__(size, confidence_threshold, bus)
        self._entries: "OrderedDict[int, PredictionEntry]" = OrderedDict()

    def predict(self, load_iid: Optional[int]) -> Optional[int]:
        """Predicted value for the load, or None when not confident."""
        if load_iid is None:
            return None
        entry = self._entries.get(load_iid)
        if entry is None or entry.confidence < self.confidence_threshold:
            return None
        self._entries.move_to_end(load_iid)
        return entry.value

    def train(self, load_iid: Optional[int], actual: int) -> None:
        """Update the table with the committed value of a load."""
        if load_iid is None:
            return
        entry = self._entries.get(load_iid)
        if entry is None:
            self._entries[load_iid] = PredictionEntry(value=actual, confidence=0)
            if len(self._entries) > self.size:
                self._entries.popitem(last=False)
            return
        if entry.value == actual:
            entry.confidence = min(entry.confidence + 1, CONFIDENCE_MAX)
        else:
            entry.value = actual
            entry.confidence = 0
        self._entries.move_to_end(load_iid)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class StrideEntry:
    value: int
    stride: int = 0
    confidence: int = 0


class StridePredictor(_PredictorBase):
    """LRU stride table: predict last value + last confirmed stride.

    Confidence counts consecutive *stride* confirmations, so a load
    walking an induction pattern (a, a+d, a+2d, ...) predicts after
    the stride repeats ``confidence_threshold`` times; a constant
    value is the d == 0 special case, making this a strict
    generalization of last-value prediction for trained entries.
    """

    def __init__(self, size: int = 32, confidence_threshold: int = 2, bus=None):
        super().__init__(size, confidence_threshold, bus)
        self._entries: "OrderedDict[int, StrideEntry]" = OrderedDict()

    def predict(self, load_iid: Optional[int]) -> Optional[int]:
        if load_iid is None:
            return None
        entry = self._entries.get(load_iid)
        if entry is None or entry.confidence < self.confidence_threshold:
            return None
        self._entries.move_to_end(load_iid)
        return entry.value + entry.stride

    def train(self, load_iid: Optional[int], actual: int) -> None:
        if load_iid is None:
            return
        entry = self._entries.get(load_iid)
        if entry is None:
            self._entries[load_iid] = StrideEntry(value=actual)
            if len(self._entries) > self.size:
                self._entries.popitem(last=False)
            return
        stride = actual - entry.value
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, CONFIDENCE_MAX)
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.value = actual
        self._entries.move_to_end(load_iid)

    def __len__(self) -> int:
        return len(self._entries)


class ContextPredictor(_PredictorBase):
    """Order-``order`` FCM predictor keyed by static load id.

    Level 1 is a per-load history of the last ``order`` committed
    values; level 2 maps that history (the *context*) to the value
    that followed it last time, with the shared confidence discipline.
    Contexts are LRU-bounded per load (``contexts_per_load``) and
    loads are LRU-bounded by ``size``, so the table cannot grow with
    the dynamic trace.
    """

    def __init__(
        self,
        size: int = 32,
        confidence_threshold: int = 2,
        bus=None,
        order: int = 2,
        contexts_per_load: int = 64,
    ):
        super().__init__(size, confidence_threshold, bus)
        if order < 1:
            raise ValueError(f"context order must be >= 1 (got {order})")
        self.order = order
        self.contexts_per_load = contexts_per_load
        #: load id -> (history tuple, context -> PredictionEntry)
        self._entries: "OrderedDict[int, Tuple[Tuple[int, ...], OrderedDict]]" = (
            OrderedDict()
        )

    def predict(self, load_iid: Optional[int]) -> Optional[int]:
        if load_iid is None:
            return None
        state = self._entries.get(load_iid)
        if state is None:
            return None
        history, contexts = state
        if len(history) < self.order:
            return None
        entry = contexts.get(history)
        if entry is None or entry.confidence < self.confidence_threshold:
            return None
        self._entries.move_to_end(load_iid)
        contexts.move_to_end(history)
        return entry.value

    def train(self, load_iid: Optional[int], actual: int) -> None:
        if load_iid is None:
            return
        state = self._entries.get(load_iid)
        if state is None:
            history: Tuple[int, ...] = ()
            contexts: "OrderedDict[Tuple[int, ...], PredictionEntry]" = (
                OrderedDict()
            )
        else:
            history, contexts = state
        if len(history) == self.order:
            entry = contexts.get(history)
            if entry is None:
                contexts[history] = PredictionEntry(value=actual, confidence=0)
                if len(contexts) > self.contexts_per_load:
                    contexts.popitem(last=False)
            elif entry.value == actual:
                entry.confidence = min(entry.confidence + 1, CONFIDENCE_MAX)
                contexts.move_to_end(history)
            else:
                entry.value = actual
                entry.confidence = 0
                contexts.move_to_end(history)
        history = (history + (actual,))[-self.order:]
        self._entries[load_iid] = (history, contexts)
        self._entries.move_to_end(load_iid)
        if len(self._entries) > self.size:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class PredictorSpec:
    """One registered prediction scheme."""

    name: str
    factory: Callable[..., _PredictorBase]
    description: str


#: The prediction-scheme registry: ``SimConfig.predictor`` values,
#: sweep-axis values, and serve-job overrides are validated against
#: these names.
PREDICTORS: Dict[str, PredictorSpec] = {
    "last": PredictorSpec(
        "last", LastValuePredictor,
        "last committed value of the load, confidence-gated ([25])",
    ),
    "stride": PredictorSpec(
        "stride", StridePredictor,
        "last value + last confirmed stride (induction patterns)",
    ),
    "context": PredictorSpec(
        "context", ContextPredictor,
        "order-2 finite context method: last two values index a "
        "per-load value history table",
    ),
}


def make_predictor(
    name: str, confidence_threshold: int = 2, bus=None
) -> _PredictorBase:
    """Instantiate a registered prediction scheme by name."""
    spec = PREDICTORS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown predictor {name!r}; valid predictors: "
            + ", ".join(repr(known) for known in sorted(PREDICTORS))
        )
    return spec.factory(confidence_threshold=confidence_threshold, bus=bus)
