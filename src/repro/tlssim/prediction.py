"""Hardware last-value prediction for violating loads (the P bars).

Per [25], value prediction targets loads that have caused violations:
instead of stalling, the consumer uses the last committed value of the
load and verifies it at commit time; a mispredict is a violation.  A
confidence counter gates predictions so cold or unstable loads are not
predicted.  The paper finds this technique has "insignificant effect on
performance, indicating that forwarded memory-resident values are
unpredictable" — our reproduction keeps the mechanism faithful so that
result emerges rather than being hard-coded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class PredictionEntry:
    value: int
    confidence: int = 0


class LastValuePredictor:
    """LRU last-value table keyed by static load id."""

    def __init__(self, size: int = 32, confidence_threshold: int = 2, bus=None):
        self.size = size
        self.confidence_threshold = confidence_threshold
        self.bus = bus
        self._entries: "OrderedDict[int, PredictionEntry]" = OrderedDict()
        self.predictions_used = 0
        self.mispredictions = 0

    def predict(self, load_iid: Optional[int]) -> Optional[int]:
        """Predicted value for the load, or None when not confident."""
        if load_iid is None:
            return None
        entry = self._entries.get(load_iid)
        if entry is None or entry.confidence < self.confidence_threshold:
            return None
        self._entries.move_to_end(load_iid)
        return entry.value

    def train(self, load_iid: Optional[int], actual: int) -> None:
        """Update the table with the committed value of a load."""
        if load_iid is None:
            return
        entry = self._entries.get(load_iid)
        if entry is None:
            self._entries[load_iid] = PredictionEntry(value=actual, confidence=0)
            if len(self._entries) > self.size:
                self._entries.popitem(last=False)
            return
        if entry.value == actual:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.value = actual
            entry.confidence = 0
        self._entries.move_to_end(load_iid)

    def record_outcome(self, correct: bool, load_iid: Optional[int] = None) -> None:
        self.predictions_used += 1
        if not correct:
            self.mispredictions += 1
        if self.bus is not None:
            self.bus.emit(
                "pred_hit" if correct else "pred_miss", load_iid=load_iid
            )

    def __len__(self) -> int:
        return len(self._entries)
