"""Sequential baseline simulation.

Runs the (untransformed) program on a single core of the simulated
machine with the same cost model as the TLS engine, attributing cycles
to the annotated regions so that parallel region times can be
normalized against the sequential region times, exactly as the paper's
bar charts are ("each bar is normalized to the execution time of the
original sequential version").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.module import Module
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine
from repro.tlssim.stats import SimResult


def simulate_sequential(
    module: Module,
    config: Optional[SimConfig] = None,
    function: str = "main",
    args: Tuple[int, ...] = (),
) -> SimResult:
    """Simulate ``module`` sequentially; regions tracked, not parallelized."""
    engine = TLSEngine(module, config=config, parallel=False)
    return engine.run(function=function, args=args)


def simulate_tls(
    module: Module,
    config: Optional[SimConfig] = None,
    oracle=None,
    function: str = "main",
    args: Tuple[int, ...] = (),
) -> SimResult:
    """Simulate ``module`` with TLS-parallel regions."""
    engine = TLSEngine(module, config=config, oracle=oracle)
    return engine.run(function=function, args=args)
