"""Graduation-slot accounting and simulation results.

The paper reports region execution time decomposed into four slot
categories (Section 1.2): *busy* (instructions graduate), *fail* (slots
wasted on failed speculation), *sync* (stalled on synchronization) and
*other* (everything else: memory stalls, idle cores, commit waits).
The number of slots is issue width x cycles x processors; we track
busy/sync/fail directly and derive *other* as the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SlotBreakdown:
    """Slot counts for one region execution."""

    busy: float = 0.0
    fail: float = 0.0
    sync: float = 0.0
    total: float = 0.0

    @property
    def other(self) -> float:
        return max(0.0, self.total - self.busy - self.fail - self.sync)

    def normalized(self, scale: float) -> Dict[str, float]:
        """Segments scaled so they sum to ``scale`` (bar rendering)."""
        if self.total <= 0:
            return {"busy": 0.0, "fail": 0.0, "sync": 0.0, "other": 0.0}
        factor = scale / self.total
        return {
            "busy": self.busy * factor,
            "fail": self.fail * factor,
            "sync": self.sync * factor,
            "other": self.other * factor,
        }


@dataclass
class ViolationRecord:
    """One squash event, for the Figure 11 classification."""

    epoch: int
    time: float
    reason: str            # 'store', 'commit', 'sab', 'prediction', 'control'
    load_iid: Optional[int] = None
    compiler_marked: bool = False
    hardware_marked: bool = False


@dataclass
class RegionStats:
    """Aggregate results for one parallelized-region instance."""

    function: str
    header: str
    start_time: float = 0.0
    end_time: float = 0.0
    epochs_committed: int = 0
    epochs_squashed: int = 0
    violations: List[ViolationRecord] = field(default_factory=list)
    slots: SlotBreakdown = field(default_factory=SlotBreakdown)
    #: sync slots split by cause, for diagnostics
    sync_scalar: float = 0.0
    sync_memory: float = 0.0
    sync_hw: float = 0.0
    max_signal_buffer: int = 0

    @property
    def cycles(self) -> float:
        return max(0.0, self.end_time - self.start_time)


@dataclass
class SimResult:
    """Whole-program simulation outcome."""

    return_value: Optional[int]
    program_cycles: float
    sequential_cycles: float = 0.0  # cycles outside parallelized regions
    regions: List[RegionStats] = field(default_factory=list)
    memory_checksum: int = 0

    def region_cycles(self) -> float:
        return sum(r.cycles for r in self.regions)

    def to_dict(self) -> Dict:
        """JSON-serializable summary (for external tooling/dashboards)."""
        return {
            "return_value": self.return_value,
            "program_cycles": self.program_cycles,
            "sequential_cycles": self.sequential_cycles,
            "memory_checksum": self.memory_checksum,
            "regions": [
                {
                    "function": r.function,
                    "header": r.header,
                    "cycles": r.cycles,
                    "epochs_committed": r.epochs_committed,
                    "epochs_squashed": r.epochs_squashed,
                    "violations": len(r.violations),
                    "slots": {
                        "busy": r.slots.busy,
                        "fail": r.slots.fail,
                        "sync": r.slots.sync,
                        "other": r.slots.other,
                        "total": r.slots.total,
                    },
                    "sync_scalar": r.sync_scalar,
                    "sync_memory": r.sync_memory,
                    "sync_hw": r.sync_hw,
                    "max_signal_buffer": r.max_signal_buffer,
                }
                for r in self.regions
            ],
        }

    def merged_region_slots(self) -> SlotBreakdown:
        merged = SlotBreakdown()
        for region in self.regions:
            merged.busy += region.slots.busy
            merged.fail += region.slots.fail
            merged.sync += region.slots.sync
            merged.total += region.slots.total
        return merged

    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.regions)


def normalized_region_time(
    parallel: SimResult, sequential: SimResult
) -> Tuple[float, Dict[str, float]]:
    """Region time of ``parallel`` normalized to ``sequential`` (=100).

    Returns ``(normalized_time, segments)`` where the segments dict has
    busy/fail/sync/other heights summing to the normalized time — the
    exact format of the paper's stacked bars (values below 100 are
    region speedups).
    """
    seq_cycles = sequential.region_cycles()
    par_cycles = parallel.region_cycles()
    if seq_cycles <= 0:
        raise ValueError("sequential run has no region cycles")
    height = 100.0 * par_cycles / seq_cycles
    segments = parallel.merged_region_slots().normalized(height)
    return height, segments
