"""Graduation-slot accounting and simulation results.

The paper reports region execution time decomposed into four slot
categories (Section 1.2): *busy* (instructions graduate), *fail* (slots
wasted on failed speculation), *sync* (stalled on synchronization) and
*other* (everything else: memory stalls, idle cores, commit waits).
The number of slots is issue width x cycles x processors; we track
busy/sync/fail directly and derive *other* as the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SlotBreakdown:
    """Slot counts for one region execution."""

    busy: float = 0.0
    fail: float = 0.0
    sync: float = 0.0
    total: float = 0.0

    @property
    def other(self) -> float:
        return max(0.0, self.total - self.busy - self.fail - self.sync)

    def normalized(self, scale: float) -> Dict[str, float]:
        """Segments scaled so they sum to ``scale`` (bar rendering)."""
        if self.total <= 0:
            return {"busy": 0.0, "fail": 0.0, "sync": 0.0, "other": 0.0}
        factor = scale / self.total
        return {
            "busy": self.busy * factor,
            "fail": self.fail * factor,
            "sync": self.sync * factor,
            "other": self.other * factor,
        }


@dataclass
class ViolationRecord:
    """One squash event, for the Figure 11 classification."""

    epoch: int
    time: float
    reason: str            # 'store', 'commit', 'sab', 'prediction', 'control'
    load_iid: Optional[int] = None
    compiler_marked: bool = False
    hardware_marked: bool = False

    def to_state(self) -> Dict:
        return {
            "epoch": self.epoch,
            "time": self.time,
            "reason": self.reason,
            "load_iid": self.load_iid,
            "compiler_marked": self.compiler_marked,
            "hardware_marked": self.hardware_marked,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "ViolationRecord":
        return cls(**state)


@dataclass
class RegionStats:
    """Aggregate results for one parallelized-region instance."""

    function: str
    header: str
    start_time: float = 0.0
    end_time: float = 0.0
    epochs_committed: int = 0
    epochs_squashed: int = 0
    violations: List[ViolationRecord] = field(default_factory=list)
    slots: SlotBreakdown = field(default_factory=SlotBreakdown)
    #: sync slots split by cause, for diagnostics
    sync_scalar: float = 0.0
    sync_memory: float = 0.0
    sync_hw: float = 0.0
    max_signal_buffer: int = 0

    @property
    def cycles(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    def to_state(self) -> Dict:
        return {
            "function": self.function,
            "header": self.header,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "epochs_committed": self.epochs_committed,
            "epochs_squashed": self.epochs_squashed,
            "violations": [v.to_state() for v in self.violations],
            "slots": {
                "busy": self.slots.busy,
                "fail": self.slots.fail,
                "sync": self.slots.sync,
                "total": self.slots.total,
            },
            "sync_scalar": self.sync_scalar,
            "sync_memory": self.sync_memory,
            "sync_hw": self.sync_hw,
            "max_signal_buffer": self.max_signal_buffer,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "RegionStats":
        return cls(
            function=state["function"],
            header=state["header"],
            start_time=state["start_time"],
            end_time=state["end_time"],
            epochs_committed=state["epochs_committed"],
            epochs_squashed=state["epochs_squashed"],
            violations=[
                ViolationRecord.from_state(v) for v in state["violations"]
            ],
            slots=SlotBreakdown(**state["slots"]),
            sync_scalar=state["sync_scalar"],
            sync_memory=state["sync_memory"],
            sync_hw=state["sync_hw"],
            max_signal_buffer=state["max_signal_buffer"],
        )


@dataclass
class SimResult:
    """Whole-program simulation outcome."""

    return_value: Optional[int]
    program_cycles: float
    sequential_cycles: float = 0.0  # cycles outside parallelized regions
    regions: List[RegionStats] = field(default_factory=list)
    memory_checksum: int = 0
    #: flat simulator counters (see repro.obs.registry.engine_counters):
    #: cache hits/misses per level, violations by reason, epoch totals,
    #: hwsync and predictor activity.  Always populated by the engine.
    counters: Dict[str, float] = field(default_factory=dict)

    def region_cycles(self) -> float:
        return sum(r.cycles for r in self.regions)

    def to_dict(self) -> Dict:
        """JSON-serializable summary (for external tooling/dashboards)."""
        return {
            "return_value": self.return_value,
            "program_cycles": self.program_cycles,
            "sequential_cycles": self.sequential_cycles,
            "memory_checksum": self.memory_checksum,
            "counters": dict(self.counters),
            "regions": [
                {
                    "function": r.function,
                    "header": r.header,
                    "cycles": r.cycles,
                    "epochs_committed": r.epochs_committed,
                    "epochs_squashed": r.epochs_squashed,
                    "violations": len(r.violations),
                    "slots": {
                        "busy": r.slots.busy,
                        "fail": r.slots.fail,
                        "sync": r.slots.sync,
                        "other": r.slots.other,
                        "total": r.slots.total,
                    },
                    "sync_scalar": r.sync_scalar,
                    "sync_memory": r.sync_memory,
                    "sync_hw": r.sync_hw,
                    "max_signal_buffer": r.max_signal_buffer,
                }
                for r in self.regions
            ],
        }

    def to_state(self) -> Dict:
        """Full-fidelity serialization (persistent result cache).

        Unlike :meth:`to_dict` (a lossy summary for dashboards), the
        state round-trips through :meth:`from_state` bit-exactly —
        every violation record survives, so cached results feed the
        Figure 11 classification unchanged.
        """
        return {
            "return_value": self.return_value,
            "program_cycles": self.program_cycles,
            "sequential_cycles": self.sequential_cycles,
            "memory_checksum": self.memory_checksum,
            "counters": dict(self.counters),
            "regions": [r.to_state() for r in self.regions],
        }

    @classmethod
    def from_state(cls, state: Dict) -> "SimResult":
        return cls(
            return_value=state["return_value"],
            program_cycles=state["program_cycles"],
            sequential_cycles=state["sequential_cycles"],
            memory_checksum=state["memory_checksum"],
            regions=[RegionStats.from_state(r) for r in state["regions"]],
            counters=dict(state.get("counters", {})),
        )

    def merged_region_slots(self) -> SlotBreakdown:
        merged = SlotBreakdown()
        for region in self.regions:
            merged.busy += region.slots.busy
            merged.fail += region.slots.fail
            merged.sync += region.slots.sync
            merged.total += region.slots.total
        return merged

    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.regions)


def normalized_region_time(
    parallel: SimResult, sequential: SimResult
) -> Tuple[float, Dict[str, float]]:
    """Region time of ``parallel`` normalized to ``sequential`` (=100).

    Returns ``(normalized_time, segments)`` where the segments dict has
    busy/fail/sync/other heights summing to the normalized time — the
    exact format of the paper's stacked bars (values below 100 are
    region speedups).
    """
    seq_cycles = sequential.region_cycles()
    par_cycles = parallel.region_cycles()
    if seq_cycles <= 0:
        raise ValueError("sequential run has no region cycles")
    height = 100.0 * par_cycles / seq_cycles
    segments = parallel.merged_region_slots().normalized(height)
    return height, segments
