"""Graduation-slot accounting and simulation results.

The paper reports region execution time decomposed into four slot
categories (Section 1.2): *busy* (instructions graduate), *fail* (slots
wasted on failed speculation), *sync* (stalled on synchronization) and
*other* (everything else: memory stalls, idle cores, commit waits).
The number of slots is issue width x cycles x processors; we track
busy/sync/fail directly and derive *other* as the remainder.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: When enabled, a negative ``other`` remainder (more busy/fail/sync
#: slots than the region had in total — always an accounting bug)
#: raises an :class:`AccountingWarning` instead of being clamped away.
#: Toggle with :func:`strict_accounting`; the test suite turns it on.
_STRICT_ACCOUNTING = False

#: Imbalances smaller than this are float noise, not accounting bugs.
ACCOUNTING_EPSILON = 1e-6


class AccountingWarning(UserWarning):
    """Slot categories exceed the region total (accounting bug)."""


def strict_accounting(enabled: bool = True) -> bool:
    """Enable/disable strict slot accounting; returns the old setting."""
    global _STRICT_ACCOUNTING
    previous = _STRICT_ACCOUNTING
    _STRICT_ACCOUNTING = enabled
    return previous


@dataclass
class SlotBreakdown:
    """Slot counts for one region execution."""

    busy: float = 0.0
    fail: float = 0.0
    sync: float = 0.0
    total: float = 0.0

    @property
    def unattributed(self) -> float:
        """Raw remainder ``total - busy - fail - sync`` (may be negative).

        A negative value means the tracked categories overlap or
        double-count — use :attr:`imbalance` to measure it.  Rendering
        code should use :attr:`other`, which clamps at zero.
        """
        return self.total - self.busy - self.fail - self.sync

    @property
    def imbalance(self) -> float:
        """Magnitude of a negative remainder (0.0 when accounts balance)."""
        return max(0.0, -self.unattributed)

    @property
    def other(self) -> float:
        remainder = self.unattributed
        if remainder < -ACCOUNTING_EPSILON and _STRICT_ACCOUNTING:
            warnings.warn(
                f"slot categories exceed total by {-remainder:g} "
                f"(busy={self.busy:g} fail={self.fail:g} "
                f"sync={self.sync:g} total={self.total:g})",
                AccountingWarning,
                stacklevel=2,
            )
        return max(0.0, remainder)

    def normalized(self, scale: float) -> Dict[str, float]:
        """Segments scaled so they sum to ``scale`` (bar rendering)."""
        if self.total <= 0:
            return {"busy": 0.0, "fail": 0.0, "sync": 0.0, "other": 0.0}
        factor = scale / self.total
        return {
            "busy": self.busy * factor,
            "fail": self.fail * factor,
            "sync": self.sync * factor,
            "other": self.other * factor,
        }


@dataclass
class ViolationRecord:
    """One squash event, for the Figure 11 classification."""

    epoch: int
    time: float
    reason: str            # 'store', 'commit', 'sab', 'prediction', 'control'
    load_iid: Optional[int] = None
    compiler_marked: bool = False
    hardware_marked: bool = False

    def to_state(self) -> Dict:
        return {
            "epoch": self.epoch,
            "time": self.time,
            "reason": self.reason,
            "load_iid": self.load_iid,
            "compiler_marked": self.compiler_marked,
            "hardware_marked": self.hardware_marked,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "ViolationRecord":
        return cls(**state)


@dataclass
class RegionStats:
    """Aggregate results for one parallelized-region instance."""

    function: str
    header: str
    start_time: float = 0.0
    end_time: float = 0.0
    epochs_committed: int = 0
    epochs_squashed: int = 0
    violations: List[ViolationRecord] = field(default_factory=list)
    slots: SlotBreakdown = field(default_factory=SlotBreakdown)
    #: sync slots split by cause, for diagnostics
    sync_scalar: float = 0.0
    sync_memory: float = 0.0
    sync_hw: float = 0.0
    max_signal_buffer: int = 0
    #: fine-grained slot attribution: named cause -> slots, computed by
    #: the engine during execution (see docs/analysis.md for the
    #: category taxonomy).  Sums exactly to ``slots.total`` — the
    #: accounting identity checked by repro.obs.analysis.
    attribution: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    def to_state(self) -> Dict:
        return {
            "function": self.function,
            "header": self.header,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "epochs_committed": self.epochs_committed,
            "epochs_squashed": self.epochs_squashed,
            "violations": [v.to_state() for v in self.violations],
            "slots": {
                "busy": self.slots.busy,
                "fail": self.slots.fail,
                "sync": self.slots.sync,
                "total": self.slots.total,
            },
            "sync_scalar": self.sync_scalar,
            "sync_memory": self.sync_memory,
            "sync_hw": self.sync_hw,
            "max_signal_buffer": self.max_signal_buffer,
            "attribution": dict(self.attribution),
        }

    @classmethod
    def from_state(cls, state: Dict) -> "RegionStats":
        return cls(
            function=state["function"],
            header=state["header"],
            start_time=state["start_time"],
            end_time=state["end_time"],
            epochs_committed=state["epochs_committed"],
            epochs_squashed=state["epochs_squashed"],
            violations=[
                ViolationRecord.from_state(v) for v in state["violations"]
            ],
            slots=SlotBreakdown(**state["slots"]),
            sync_scalar=state["sync_scalar"],
            sync_memory=state["sync_memory"],
            sync_hw=state["sync_hw"],
            max_signal_buffer=state["max_signal_buffer"],
            attribution=dict(state.get("attribution", {})),
        )


@dataclass
class SimResult:
    """Whole-program simulation outcome."""

    return_value: Optional[int]
    program_cycles: float
    sequential_cycles: float = 0.0  # cycles outside parallelized regions
    regions: List[RegionStats] = field(default_factory=list)
    memory_checksum: int = 0
    #: flat simulator counters (see repro.obs.registry.engine_counters):
    #: cache hits/misses per level, violations by reason, epoch totals,
    #: hwsync and predictor activity.  Always populated by the engine.
    counters: Dict[str, float] = field(default_factory=dict)

    def region_cycles(self) -> float:
        return sum(r.cycles for r in self.regions)

    def to_dict(self) -> Dict:
        """JSON-serializable summary (for external tooling/dashboards)."""
        return {
            "return_value": self.return_value,
            "program_cycles": self.program_cycles,
            "sequential_cycles": self.sequential_cycles,
            "memory_checksum": self.memory_checksum,
            "counters": dict(self.counters),
            "regions": [
                {
                    "function": r.function,
                    "header": r.header,
                    "cycles": r.cycles,
                    "epochs_committed": r.epochs_committed,
                    "epochs_squashed": r.epochs_squashed,
                    "violations": len(r.violations),
                    "slots": {
                        "busy": r.slots.busy,
                        "fail": r.slots.fail,
                        "sync": r.slots.sync,
                        "other": r.slots.other,
                        "total": r.slots.total,
                    },
                    "sync_scalar": r.sync_scalar,
                    "sync_memory": r.sync_memory,
                    "sync_hw": r.sync_hw,
                    "max_signal_buffer": r.max_signal_buffer,
                    "attribution": dict(r.attribution),
                }
                for r in self.regions
            ],
        }

    def to_state(self) -> Dict:
        """Full-fidelity serialization (persistent result cache).

        Unlike :meth:`to_dict` (a lossy summary for dashboards), the
        state round-trips through :meth:`from_state` bit-exactly —
        every violation record survives, so cached results feed the
        Figure 11 classification unchanged.
        """
        return {
            "return_value": self.return_value,
            "program_cycles": self.program_cycles,
            "sequential_cycles": self.sequential_cycles,
            "memory_checksum": self.memory_checksum,
            "counters": dict(self.counters),
            "regions": [r.to_state() for r in self.regions],
        }

    @classmethod
    def from_state(cls, state: Dict) -> "SimResult":
        return cls(
            return_value=state["return_value"],
            program_cycles=state["program_cycles"],
            sequential_cycles=state["sequential_cycles"],
            memory_checksum=state["memory_checksum"],
            regions=[RegionStats.from_state(r) for r in state["regions"]],
            counters=dict(state.get("counters", {})),
        )

    def merged_region_slots(self) -> SlotBreakdown:
        merged = SlotBreakdown()
        for region in self.regions:
            merged.busy += region.slots.busy
            merged.fail += region.slots.fail
            merged.sync += region.slots.sync
            merged.total += region.slots.total
        return merged

    def merged_attribution(self) -> Dict[str, float]:
        """Fine-grained attribution summed over all regions."""
        merged: Dict[str, float] = {}
        for region in self.regions:
            for cause, slots in region.attribution.items():
                merged[cause] = merged.get(cause, 0.0) + slots
        return merged

    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.regions)


def normalized_region_time(
    parallel: SimResult, sequential: SimResult
) -> Tuple[float, Dict[str, float]]:
    """Region time of ``parallel`` normalized to ``sequential`` (=100).

    Returns ``(normalized_time, segments)`` where the segments dict has
    busy/fail/sync/other heights summing to the normalized time — the
    exact format of the paper's stacked bars (values below 100 are
    region speedups).
    """
    seq_cycles = sequential.region_cycles()
    par_cycles = parallel.region_cycles()
    if seq_cycles <= 0:
        raise ValueError("sequential run has no region cycles")
    height = 100.0 * par_cycles / seq_cycles
    segments = parallel.merged_region_slots().normalized(height)
    return height, segments


def normalized_attribution(
    parallel: SimResult, sequential: SimResult
) -> Dict[str, float]:
    """Fine-grained attribution on the stacked-bar scale.

    Each cause's slots scaled so all causes together sum to the bar's
    normalized region time — the same scale ``normalized_region_time``
    puts the coarse busy/fail/sync/other segments on, so e.g. the
    ``sync.*`` causes decompose a bar's ``sync`` segment in place.
    """
    seq_cycles = sequential.region_cycles()
    if seq_cycles <= 0:
        raise ValueError("sequential run has no region cycles")
    height = 100.0 * parallel.region_cycles() / seq_cycles
    total = sum(r.slots.total for r in parallel.regions)
    if total <= 0:
        return {}
    return {
        cause: height * slots / total
        for cause, slots in sorted(parallel.merged_attribution().items())
    }
