"""Execution tracing and timeline rendering.

A :class:`Tracer` records epoch-lifecycle events — epoch starts,
squashes, commits, violations, region boundaries and (since the
``repro.obs`` event bus) synchronization stalls — that debugging tools
and the ``examples/timeline.py`` walkthrough can replay.  It doubles
as an event-bus *sink*: passed to the engine (via ``tracer=`` or
``bus.attach``), it adapts the typed :mod:`repro.obs.events` stream
back into its flat :class:`TraceEvent` list.

:func:`render_timeline` draws the per-core occupancy of a region as
ASCII art: each row is a core; each segment is one epoch run,
committed (``=``) or squashed (``x``), with synchronization-stalled
stretches overdrawn as ``~``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import math


@dataclass
class TraceEvent:
    """One engine event."""

    kind: str          # 'region_start' | 'region_end' | 'epoch_start'
    #                  # | 'squash' | 'commit' | 'violation'
    #                  # | 'stall_start' | 'stall_end'
    time: float
    epoch: int = -1
    generation: int = 0
    core: int = -1
    detail: str = ""


class Tracer:
    """Collects engine events; cheap enough to leave on in tests."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    # -- event-bus sink ------------------------------------------------------

    def on_event(self, event) -> None:
        """Adapt a :class:`repro.obs.events.Event` into the flat list.

        Epoch-lifecycle kinds keep their legacy names; stall/unblock
        pairs (both forwarding and until-oldest synchronization) map
        onto ``stall_start``/``stall_end`` so the timeline can shade
        them.  Everything else (cache misses, forwarding sends, ...)
        is out of scope for the timeline and ignored.
        """
        kind = event.kind
        if kind == "region_start":
            self.region_start(
                event.fields.get("function", "?"),
                event.fields.get("header", "?"),
                event.time,
            )
        elif kind == "region_end":
            self.region_end(event.time)
        elif kind == "epoch_start":
            self.epoch_start(
                event.epoch, event.generation, event.core, event.time
            )
        elif kind == "squash":
            self.squash(
                event.epoch, event.generation, event.core, event.time,
                str(event.fields.get("reason", "")),
            )
        elif kind == "commit":
            self.commit(event.epoch, event.generation, event.core, event.time)
        elif kind == "violation":
            self.violation(
                event.epoch, event.time, str(event.fields.get("reason", ""))
            )
        elif kind in ("fwd_stall", "sync_stall"):
            detail = str(
                event.fields.get("channel") or event.fields.get("cause", "")
            )
            self.events.append(
                TraceEvent(
                    "stall_start", event.time, event.epoch,
                    event.generation, event.core, detail,
                )
            )
        elif kind in ("fwd_unblock", "sync_unblock"):
            self.events.append(
                TraceEvent(
                    "stall_end", event.time, event.epoch,
                    event.generation, event.core,
                )
            )

    # -- direct hook points (legacy engine API) ------------------------------

    def region_start(self, function: str, header: str, time: float) -> None:
        self.events.append(
            TraceEvent("region_start", time, detail=f"{function}:{header}")
        )

    def region_end(self, time: float) -> None:
        self.events.append(TraceEvent("region_end", time))

    def epoch_start(
        self, epoch: int, generation: int, core: int, time: float
    ) -> None:
        self.events.append(
            TraceEvent("epoch_start", time, epoch, generation, core)
        )

    def squash(
        self, epoch: int, generation: int, core: int, time: float, reason: str
    ) -> None:
        self.events.append(
            TraceEvent("squash", time, epoch, generation, core, reason)
        )

    def commit(self, epoch: int, generation: int, core: int, time: float) -> None:
        self.events.append(TraceEvent("commit", time, epoch, generation, core))

    def violation(self, epoch: int, time: float, reason: str) -> None:
        self.events.append(TraceEvent("violation", time, epoch, detail=reason))

    # -- queries -------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def runs(self) -> List[Tuple[int, int, int, float, float, bool]]:
        """(epoch, generation, core, start, end, committed) per run."""
        open_runs: Dict[Tuple[int, int], TraceEvent] = {}
        finished = []
        for event in self.events:
            key = (event.epoch, event.generation)
            if event.kind == "epoch_start":
                open_runs[key] = event
            elif event.kind in ("squash", "commit") and key in open_runs:
                start = open_runs.pop(key)
                finished.append(
                    (
                        event.epoch,
                        event.generation,
                        start.core,
                        start.time,
                        event.time,
                        event.kind == "commit",
                    )
                )
        return finished

    def stalls(self) -> List[Tuple[int, int, int, float, Optional[float]]]:
        """(epoch, generation, core, start, end) per stall.

        ``end`` is None for a stall still open when the run ended (the
        run was squashed mid-stall); the renderer clips such stalls to
        the run's own extent.
        """
        open_stalls: Dict[Tuple[int, int], TraceEvent] = {}
        finished: List[Tuple[int, int, int, float, Optional[float]]] = []
        for event in self.events:
            key = (event.epoch, event.generation)
            if event.kind == "stall_start":
                open_stalls[key] = event
            elif event.kind == "stall_end" and key in open_stalls:
                start = open_stalls.pop(key)
                finished.append(
                    (event.epoch, event.generation, start.core,
                     start.time, event.time)
                )
            elif event.kind in ("squash", "commit") and key in open_stalls:
                start = open_stalls.pop(key)
                finished.append(
                    (event.epoch, event.generation, start.core,
                     start.time, None)
                )
        for key, start in open_stalls.items():
            finished.append((key[0], key[1], start.core, start.time, None))
        return finished


def render_timeline(
    tracer: Tracer,
    width: int = 76,
    num_cores: Optional[int] = None,
    max_epoch: Optional[int] = None,
) -> str:
    """ASCII per-core occupancy of the first traced region.

    Committed runs render as ``[nn====]``, squashed ones as ``[nnxxxx]``
    (nn = epoch index modulo 100); stretches where the run was stalled
    on synchronization are overdrawn as ``~``; idle time is blank.  The
    scale is linear from region start to region end.  Regions with zero
    committed epochs (all runs squashed, or a trace cut short) render
    the squashed runs rather than erroring; a trace with no finished
    epoch runs at all yields a placeholder line.
    """
    runs = [r for r in tracer.runs() if math.isfinite(r[3]) and math.isfinite(r[4])]
    if max_epoch is not None:
        runs = [r for r in runs if r[0] <= max_epoch]
    if not runs:
        return "(no epoch runs traced)"
    start = min(r[3] for r in runs)
    end = max(r[4] for r in runs)
    span = max(end - start, 1e-9)
    cores = num_cores if num_cores and num_cores > 0 else (
        max(r[2] for r in runs) + 1
    )

    def column(time: float) -> int:
        return min(width - 1, max(0, int((time - start) / span * width)))

    #: (epoch, generation) -> run extent, for clipping stall segments
    extents = {(r[0], r[1]): (r[3], r[4]) for r in runs}
    stalls_by_run: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    for epoch, gen, _core, s_start, s_end in tracer.stalls():
        extent = extents.get((epoch, gen))
        if extent is None:
            continue
        clipped_end = extent[1] if s_end is None else min(s_end, extent[1])
        clipped_start = max(s_start, extent[0])
        if clipped_end > clipped_start:
            stalls_by_run.setdefault((epoch, gen), []).append(
                (clipped_start, clipped_end)
            )

    rows = []
    for core in range(cores):
        line = [" "] * width
        for epoch, gen, run_core, run_start, run_end, committed in runs:
            if run_core != core:
                continue
            left, right = column(run_start), column(run_end)
            fill = "=" if committed else "x"
            for position in range(left, max(right, left + 1)):
                line[position] = fill
            for s_start, s_end in stalls_by_run.get((epoch, gen), ()):
                s_left, s_right = column(s_start), column(s_end)
                for position in range(s_left, max(s_right, s_left + 1)):
                    line[position] = "~"
            label = f"{epoch % 100:02d}"
            if right - left >= 3:
                line[left] = label[0]
                line[left + 1] = label[1]
        rows.append(f"core {core} |{''.join(line)}|")
    header = (
        f"t={start:.0f}"
        + " " * max(1, width - len(f"t={start:.0f}") - len(f"t={end:.0f}") + 7)
        + f"t={end:.0f}"
    )
    return "\n".join([header] + rows)
