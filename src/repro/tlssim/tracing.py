"""Execution tracing and timeline rendering.

A :class:`Tracer` passed to the engine records structured events —
epoch starts, squashes, commits, violations and region boundaries —
that debugging tools and the ``examples/timeline.py`` walkthrough can
replay.  :func:`render_timeline` draws the per-core occupancy of a
region as ASCII art: each row is a core; each segment is one epoch run,
committed (``=``) or squashed (``x``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class TraceEvent:
    """One engine event."""

    kind: str          # 'region_start' | 'region_end' | 'epoch_start'
    #                  # | 'squash' | 'commit' | 'violation'
    time: float
    epoch: int = -1
    generation: int = 0
    core: int = -1
    detail: str = ""


class Tracer:
    """Collects engine events; cheap enough to leave on in tests."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    # -- engine hook points -------------------------------------------------

    def region_start(self, function: str, header: str, time: float) -> None:
        self.events.append(
            TraceEvent("region_start", time, detail=f"{function}:{header}")
        )

    def region_end(self, time: float) -> None:
        self.events.append(TraceEvent("region_end", time))

    def epoch_start(
        self, epoch: int, generation: int, core: int, time: float
    ) -> None:
        self.events.append(
            TraceEvent("epoch_start", time, epoch, generation, core)
        )

    def squash(
        self, epoch: int, generation: int, core: int, time: float, reason: str
    ) -> None:
        self.events.append(
            TraceEvent("squash", time, epoch, generation, core, reason)
        )

    def commit(self, epoch: int, generation: int, core: int, time: float) -> None:
        self.events.append(TraceEvent("commit", time, epoch, generation, core))

    def violation(self, epoch: int, time: float, reason: str) -> None:
        self.events.append(TraceEvent("violation", time, epoch, detail=reason))

    # -- queries -------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def runs(self) -> List[Tuple[int, int, int, float, float, bool]]:
        """(epoch, generation, core, start, end, committed) per run."""
        open_runs: Dict[Tuple[int, int], TraceEvent] = {}
        finished = []
        for event in self.events:
            key = (event.epoch, event.generation)
            if event.kind == "epoch_start":
                open_runs[key] = event
            elif event.kind in ("squash", "commit") and key in open_runs:
                start = open_runs.pop(key)
                finished.append(
                    (
                        event.epoch,
                        event.generation,
                        start.core,
                        start.time,
                        event.time,
                        event.kind == "commit",
                    )
                )
        return finished


def render_timeline(
    tracer: Tracer,
    width: int = 76,
    num_cores: Optional[int] = None,
    max_epoch: Optional[int] = None,
) -> str:
    """ASCII per-core occupancy of the first traced region.

    Committed runs render as ``[nn====]``, squashed ones as ``[nnxxxx]``
    (nn = epoch index modulo 100); idle time is blank.  The scale is
    linear from region start to region end.
    """
    runs = tracer.runs()
    if max_epoch is not None:
        runs = [r for r in runs if r[0] <= max_epoch]
    if not runs:
        return "(no epoch runs traced)"
    start = min(r[3] for r in runs)
    end = max(r[4] for r in runs)
    span = max(end - start, 1e-9)
    cores = num_cores or (max(r[2] for r in runs) + 1)

    def column(time: float) -> int:
        return min(width - 1, max(0, int((time - start) / span * width)))

    rows = []
    for core in range(cores):
        line = [" "] * width
        for epoch, _gen, run_core, run_start, run_end, committed in runs:
            if run_core != core:
                continue
            left, right = column(run_start), column(run_end)
            fill = "=" if committed else "x"
            for position in range(left, max(right, left + 1)):
                line[position] = fill
            label = f"{epoch % 100:02d}"
            if right - left >= 3:
                line[left] = label[0]
                line[left + 1] = label[1]
        rows.append(f"core {core} |{''.join(line)}|")
    header = (
        f"t={start:.0f}"
        + " " * max(1, width - len(f"t={start:.0f}") - len(f"t={end:.0f}") + 7)
        + f"t={end:.0f}"
    )
    return "\n".join([header] + rows)
