"""Synthetic SPEC-like workloads (see DESIGN.md for the substitution).

Importing this package registers all sixteen workloads in Table 2
order; use :func:`repro.workloads.all_workloads` to enumerate them.
"""

from repro.workloads import (  # noqa: F401  (registration side effects)
    go,
    m88ksim,
    ijpeg,
    gzip_comp,
    gzip_decomp,
    vpr_place,
    gcc,
    mcf,
    crafty,
    parser,
    perlbmk,
    gap,
    bzip2_comp,
    bzip2_decomp,
    twolf,
)
from repro.workloads.base import Workload, all_workloads, get_workload

__all__ = ["Workload", "all_workloads", "get_workload"]
