"""Workload infrastructure: registry, input generation, builder helpers.

Each workload is a synthetic program in the mini-IR that recreates the
*dependence signature* the paper reports for one SPEC benchmark: how
often inter-epoch memory-resident dependences occur, at what distance,
where producer stores and consumer loads sit within the epoch, whether
dependences are input-sensitive, whether sharing is true or false, and
how memory-bound the epochs are.  DESIGN.md Section 2 documents why
this substitution preserves the paper's evaluation.

The per-benchmark region coverage and the sequential-region overhead of
the transformed binary (the paper's Table 2 measurement artifact caused
by inline assembly inhibiting gcc optimization) are carried as workload
metadata and used by the program-level experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.ir.builder import FunctionBuilder, ModuleBuilder
from repro.ir.module import Module

#: A builder maps an input spec to a module; it must be structurally
#: deterministic (inputs may change data, never the instruction stream).
Builder = Callable[[object], Module]


@dataclass(frozen=True)
class Workload:
    """One benchmark: builder, inputs, and Table 2 metadata."""

    name: str
    spec_name: str
    build: Builder
    train_input: object
    ref_input: object
    #: fraction of sequential execution spent in parallelized regions
    coverage: float
    #: sequential-region speedup of the transformed binary (< 1.0 models
    #: the paper's instrumentation artifact; Table 2 column 4)
    seq_overhead: float
    description: str


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    if not 0.0 < workload.coverage <= 1.0:
        raise ValueError(f"{workload.name}: coverage must be in (0, 1]")
    _REGISTRY[workload.name] = workload
    return workload


def all_workloads() -> List[Workload]:
    """Registered workloads in registration (paper Table 2) order."""
    import repro.workloads  # noqa: F401  (triggers registration)

    return list(_REGISTRY.values())


def get_workload(name: str) -> Workload:
    import repro.workloads  # noqa: F401

    return _REGISTRY[name]


# ---------------------------------------------------------------------------
# deterministic input generation
# ---------------------------------------------------------------------------


def lcg_stream(seed: int, count: int, mod: int) -> List[int]:
    """Deterministic pseudo-random ints in [0, mod) from an LCG."""
    if mod < 1:
        raise ValueError("mod must be >= 1")
    values = []
    state = seed & 0x7FFFFFFF or 1
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        # Use the high bits: LCG low bits have tiny periods (the low
        # two bits cycle with period <= 4), which would turn "random"
        # modulo conditions into strict round-robins.
        values.append((state >> 16) % mod)
    return values


# ---------------------------------------------------------------------------
# builder fragments
# ---------------------------------------------------------------------------


def emit_filler(fb: FunctionBuilder, count: int, salt: int = 1) -> str:
    """Emit ``count`` straight-line ALU instructions; returns the result reg.

    The filler gives epochs realistic sizes without extra memory traffic
    or control flow (which would perturb the dependence signature).
    """
    acc = fb.const(salt)
    for index in range(max(0, count - 1)):
        op = ("add", "xor", "mul", "sub")[index % 4]
        operand = (index * 2 + salt) % 251 + 1
        acc = fb.binop(op, acc, operand)
    return acc


def emit_array_walk(
    fb: FunctionBuilder,
    array: str,
    index_reg,
    stride: int,
    length: int,
    touches: int,
) -> str:
    """Emit ``touches`` dependent loads striding over a global array.

    Strided reads over a large array produce secondary-cache and memory
    misses, making an epoch memory-bound (the MCF signature).
    """
    base = fb.mul(index_reg, stride)
    pos = fb.mod(base, length)
    acc = fb.const(0)
    for t in range(touches):
        offs = fb.add(pos, (t * 17) % length)
        offs2 = fb.mod(offs, length)
        addr = fb.add(f"@{array}", offs2)
        value = fb.load(addr)
        acc = fb.add(acc, value)
    return acc


#: Stride (words) between per-epoch result slots — a full cache line,
#: so writing the slot never causes accidental false sharing.
SLOT_STRIDE = 8


def add_result_slots(mb: ModuleBuilder, iters: int, name: str = "slots") -> str:
    """Declare the per-epoch result array; returns its name."""
    mb.global_var(name, iters * SLOT_STRIDE)
    return name


def emit_slot_store(fb: FunctionBuilder, value, name: str = "slots") -> None:
    """Store ``value`` into the current epoch's private result slot.

    Epochs deposit their results into disjoint cache lines, so the
    deposit itself creates no inter-epoch dependence; the scaffold's
    post-loop reduction combines the slots sequentially.
    """
    offset = fb.mul("i", SLOT_STRIDE)
    addr = fb.add(f"@{name}", offset)
    fb.store(addr, value)


def standard_region(
    mb: ModuleBuilder,
    iters: int,
    body: Callable[[FunctionBuilder], None],
    setup: Optional[Callable[[FunctionBuilder], None]] = None,
    slots: Optional[str] = "slots",
) -> ModuleBuilder:
    """Emit a ``main`` with one parallelizable loop of ``iters`` epochs.

    ``body`` is called with the builder positioned inside the loop with
    register ``i`` holding the epoch index; it may open further blocks
    but must leave the builder in an open block.  The scaffold then
    emits the induction update and the loop branch.  ``setup`` runs
    before the loop.  When ``slots`` names a result array declared with
    :func:`add_result_slots`, a sequential post-loop reduction over the
    per-epoch slots becomes the program result.
    """
    fb = mb.function("main")
    fb.block("entry")
    if setup is not None:
        setup(fb)
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    body(fb)
    fb.add("i", 1, dest="i")
    cond = fb.binop("lt", "i", iters)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    if slots is None:
        fb.ret(0)
        return mb
    fb.const(0, dest="k")
    fb.const(0, dest="sum")
    fb.jump("reduce")
    fb.block("reduce")
    offset = fb.mul("k", SLOT_STRIDE)
    addr = fb.add(f"@{slots}", offset)
    value = fb.load(addr)
    mixed = fb.binop("xor", "sum", value)
    fb.add(mixed, 1, dest="sum")
    fb.add("k", 1, dest="k")
    cond = fb.binop("lt", "k", iters)
    fb.condbr(cond, "reduce", "finish")
    fb.block("finish")
    fb.ret("sum")
    return mb
