"""BZIP2_COMP (SPEC 256.bzip2, compression) — many low-frequency loads.

Signature (paper Section 2.4): BZIP2_COMP (with GZIP_COMP) "do not
speed up with respect to sequential execution until we additionally
predict loads with less-frequently occurring dependences ... Only when
all loads that cause inter-epoch data dependences in more than 5% of
all epochs are perfectly predicted are we able to improve the
performance", motivating the paper's 5% threshold.

Realization: the shared run-length state is *written* every epoch but
*read* through one of eight coding paths chosen by the input symbol, so
each static load causes an inter-epoch dependence in only ~11% of
epochs.  Perfectly predicting the >25% or >15% load sets therefore
predicts nothing and the region keeps failing; the >5% set (and the
compiler's 5% grouping threshold) covers all eight loads.  Each path
recomputes the state through a long local chain before the epoch-end
store, so even synchronized the region barely beats the sequential
version — the paper's ~0.94 region "speedup".
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 240
PATHS = 8
BAND = 90 // PATHS  # symbol band width per coding path


def build(input_spec):
    seed = input_spec["seed"]
    symbols = lcg_stream(seed, ITERS, 90)

    mb = ModuleBuilder("bzip2_comp")
    mb.global_var("symbols", ITERS, init=symbols)
    mb.global_var("rle_state", 1, init=5)
    add_result_slots(mb, ITERS)

    def body(fb):
        saddr = fb.add("@symbols", "i")
        symbol = fb.load(saddr)
        emit_filler(fb, 2, salt=43)
        # Eight coding paths; each reads the shared state through its
        # own static load (~11% of epochs each) and recomputes it
        # through a long local chain.
        band = fb.div(symbol, BAND)
        for path in range(PATHS):
            is_last = path == PATHS - 1
            take_label = f"p{path}"
            next_label = f"q{path}" if not is_last else f"p{path}"
            if not is_last:
                here = fb.binop("eq", band, path)
                fb.condbr(here, take_label, next_label)
                fb.block(take_label)
            else:
                fb.jump(take_label)
                fb.block(take_label)
            state = fb.load("@rle_state")
            work = emit_filler(fb, 44, salt=3 + path)
            mixed = fb.binop("xor", state, work)
            recoded = fb.add(mixed, symbol)
            bounded = fb.mod(recoded, 49999)
            fb.move(bounded, dest="contrib")
            fb.jump("join")
            if not is_last:
                fb.block(next_label)
        fb.block("join")
        # The state is written every epoch, whatever path produced it.
        fb.store("@rle_state", "contrib")
        back = emit_filler(fb, 2, salt=47)
        deposit = fb.binop("xor", back, "contrib")
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="bzip2_comp",
        spec_name="256.bzip2-comp",
        build=build,
        train_input={"seed": 127},
        ref_input={"seed": 887},
        coverage=0.63,
        seq_overhead=0.96,
        description=(
            "An every-epoch RLE-state store read through eight ~11% "
            "coding paths: only the 5% threshold covers the loads "
            "(Figure 6's point), and the long in-path chains keep even "
            "the synchronized region near sequential speed."
        ),
    )
)
