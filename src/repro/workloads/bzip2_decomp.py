"""BZIP2_DECOMP (SPEC 256.bzip2, decompression) — speculation just works.

Signature (paper Section 4.1: "failed speculation was not a problem to
begin with"; Table 2: 13% coverage, region speedup 1.66): inverse-
transform epochs write disjoint output blocks and share almost nothing
— under 1% of epochs touch a shared CRC word.  Plain TLS already
achieves the available speedup; neither compiler nor hardware
synchronization has anything to improve, and neither should hurt.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 200
BLOCK = 8


def build(input_spec):
    seed = input_spec["seed"]
    codes = lcg_stream(seed, ITERS, 1000)

    mb = ModuleBuilder("bzip2_decomp")
    mb.global_var("codes", ITERS, init=codes)
    mb.global_var("output", ITERS * BLOCK)
    mb.global_var("crc", 1, init=0x5A5)
    add_result_slots(mb, ITERS)

    def body(fb):
        caddr = fb.add("@codes", "i")
        code = fb.load(caddr)
        local = emit_filler(fb, 42, salt=53)
        decoded = fb.binop("xor", local, code)
        base = fb.mul("i", BLOCK)
        for k in range(BLOCK):
            offs = fb.add(base, k)
            addr = fb.add("@output", offs)
            word = fb.binop("shr", decoded, k % 6)
            fb.store(addr, word)
        # Very rare shared CRC touch (<1% of epochs).
        rare = fb.binop("lt", code, 8)
        fb.condbr(rare, "crc", "skip")
        fb.block("crc")
        crc = fb.load("@crc")
        crc2 = fb.binop("xor", crc, decoded)
        fb.store("@crc", crc2)
        fb.jump("skip")
        fb.block("skip")
        emit_slot_store(fb, decoded)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="bzip2_decomp",
        spec_name="256.bzip2-decomp",
        build=build,
        train_input={"seed": 139},
        ref_input={"seed": 919},
        coverage=0.13,
        seq_overhead=0.99,
        description=(
            "Disjoint output blocks, <1% shared CRC touches: plain TLS "
            "already wins; no scheme changes anything."
        ),
    )
)
