"""CRAFTY (SPEC 186.crafty) — low coverage, infrequent hash updates.

Signature (paper Table 2: 14% coverage, region speedup ~1.16): chess
position evaluation epochs are compute-heavy and mostly independent;
a transposition-table update occurs in only ~9% of epochs, near
the 5% threshold boundary, so the compiler synchronizes a single
borderline dependence.  Both synchronization schemes yield small,
comparable improvements; the low region coverage keeps the program-
level impact modest.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 200
TABLE = 128


def build(input_spec):
    seed = input_spec["seed"]
    positions = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("crafty")
    mb.global_var("positions", ITERS, init=positions)
    mb.global_var("hash_hits", 1, init=5)
    mb.global_var("tt", TABLE, init=lcg_stream(seed + 29, TABLE, 65536))
    add_result_slots(mb, ITERS)

    def body(fb):
        paddr = fb.add("@positions", "i")
        pos = fb.load(paddr)
        taddr0 = fb.mul(pos, 67)
        taddr1 = fb.mod(taddr0, TABLE)
        taddr = fb.add("@tt", taddr1)
        entry = fb.load(taddr)
        local = emit_filler(fb, 64, salt=23)
        evaluated = fb.binop("xor", local, entry)
        # Borderline dependence: hash-hit counter in ~9% of epochs.
        hit = fb.binop("lt", pos, 9)
        fb.condbr(hit, "hot", "cold")
        fb.block("hot")
        hits = fb.load("@hash_hits")
        hits2 = fb.add(hits, 1)
        fb.store("@hash_hits", hits2)
        fb.jump("join")
        fb.block("cold")
        fb.jump("join")
        fb.block("join")
        tail = emit_filler(fb, 18, salt=27)
        deposit = fb.binop("xor", tail, evaluated)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="crafty",
        spec_name="186.crafty",
        build=build,
        train_input={"seed": 61},
        ref_input={"seed": 457},
        coverage=0.14,
        seq_overhead=0.92,
        description=(
            "Compute-heavy independent epochs; a ~9% hash-counter "
            "dependence sits at the threshold boundary."
        ),
    )
)
