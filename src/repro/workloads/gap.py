"""GAP (SPEC 254.gap) — allocator bump pointer on the critical path.

Signature (paper Table 2: 57% coverage, parallel-region speedup ~0.92
— even the best scheme cannot reach sequential speed — yet Section 4.2
lists GAP among the benchmarks where *compiler* synchronization is the
best of the schemes): every epoch reads the shared arena bump pointer
early and publishes the advanced pointer only after computing the
(value-dependent) object size, so the forwarding chain spans most of
the epoch.  Under plain TLS the dependence violates nearly every epoch;
compiler forwarding at the store turns that into synchronization stalls
(cheaper than restarts but still serializing); hardware
stall-until-commit serializes slightly more.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 200


def build(input_spec):
    seed = input_spec["seed"]
    requests = lcg_stream(seed, ITERS, 48)

    mb = ModuleBuilder("gap")
    mb.global_var("requests", ITERS, init=requests)
    mb.global_var("bump_ptr", 1, init=1000)
    mb.global_var("heap_words", 4096)
    add_result_slots(mb, ITERS)

    def body(fb):
        raddr = fb.add("@requests", "i")
        request = fb.load(raddr)
        # Read the bump pointer early ...
        ptr = fb.load("@bump_ptr")
        # ... compute the rounded allocation size (takes most of the
        # epoch: the chain from load to store is long) ...
        local = emit_filler(fb, 62, salt=37)
        noise = fb.mod(local, 7)
        size0 = fb.add(request, noise)
        size1 = fb.add(size0, 7)
        size2 = fb.binop("shr", size1, 3)
        size = fb.binop("shl", size2, 3)
        nptr0 = fb.add(ptr, size)
        nptr = fb.mod(nptr0, 1 << 20)
        # ... and only then publish the advanced pointer.
        fb.store("@bump_ptr", nptr)
        # Touch the "allocated" storage (private-ish region).
        haddr0 = fb.mod(ptr, 4096)
        haddr = fb.add("@heap_words", haddr0)
        fb.store(haddr, request)
        tail = emit_filler(fb, 4, salt=41)
        deposit = fb.binop("xor", tail, nptr)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="gap",
        spec_name="254.gap",
        build=build,
        train_input={"seed": 113},
        ref_input={"seed": 859},
        coverage=0.57,
        seq_overhead=0.82,
        description=(
            "An every-epoch bump-pointer dependence whose producer "
            "store lands late: forwarding helps but the region stays "
            "near sequential speed."
        ),
    )
)
