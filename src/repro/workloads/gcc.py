"""GCC (SPEC 176.gcc) — worklist-style frequent dependence, mixed paths.

Signature (paper Table 2: 18% coverage, region speedup 1.18 with
compiler synchronization): the parallelized loop processes pseudo-RTL
expressions; roughly 60% of epochs pop/push a shared worklist head
mid-epoch (a frequent, word-granular true dependence the compiler
synchronizes well) and a few percent touch a shared symbol counter
(left to speculation).  Compiler synchronization recovers most of the
failed speculation; hardware synchronization also helps but stalls the
worklist loads longer than the forward takes.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 220


def build(input_spec):
    seed = input_spec["seed"]
    exprs = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("gcc")
    mb.global_var("exprs", ITERS, init=exprs)
    mb.global_var("worklist_head", 1, init=13)
    mb.global_var("symbol_count", 1, init=2)
    mb.global_var("rtl_pool", 256, init=lcg_stream(seed + 23, 256, 10000))
    add_result_slots(mb, ITERS)

    def body(fb):
        eaddr = fb.add("@exprs", "i")
        expr = fb.load(eaddr)
        paddr0 = fb.mul(expr, 37)
        paddr1 = fb.mod(paddr0, 256)
        paddr = fb.add("@rtl_pool", paddr1)
        rtl = fb.load(paddr)
        front = emit_filler(fb, 30, salt=13)
        folded = fb.binop("xor", front, rtl)
        # Frequent dependence: worklist head, ~60% of epochs, mid-epoch.
        busy = fb.binop("lt", expr, 60)
        fb.condbr(busy, "pop", "nowork")
        fb.block("pop")
        head = fb.load("@worklist_head")
        next_head0 = fb.add(head, folded)
        next_head = fb.mod(next_head0, 16384)
        fb.store("@worklist_head", next_head)
        fb.jump("mid")
        fb.block("nowork")
        fb.jump("mid")
        # Infrequent dependence: symbol interning, ~4% of epochs.
        fb.block("mid")
        intern = fb.binop("lt", expr, 4)
        fb.condbr(intern, "sym", "tail")
        fb.block("sym")
        count = fb.load("@symbol_count")
        count2 = fb.add(count, 1)
        fb.store("@symbol_count", count2)
        fb.jump("tail")
        fb.block("tail")
        back = emit_filler(fb, 26, salt=17)
        deposit = fb.binop("xor", back, folded)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="gcc",
        spec_name="176.gcc",
        build=build,
        train_input={"seed": 149},
        ref_input={"seed": 827},
        coverage=0.18,
        seq_overhead=0.94,
        description=(
            "A ~60% worklist-head dependence mid-epoch plus a ~4% "
            "symbol-counter dependence; compiler sync recovers most "
            "failed speculation."
        ),
    )
)
