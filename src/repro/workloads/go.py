"""GO (SPEC 099.go) — game-tree evaluation with frequent global updates.

Signature (paper Table 2 / Section 4.2): 22% coverage; the parallelized
loop evaluates candidate moves, and most epochs read-modify-write a
global evaluation accumulator and a small history table, producing
*frequent, word-granular, true* inter-epoch dependences with the
producer store in the middle of the epoch.  The compiler synchronizes
them precisely and forwards early, so compiler-inserted
synchronization gives the best result (GO is one of the paper's four
compiler-won benchmarks); the hardware's stall-until-commit
over-serializes the same loads.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 220
BOARD = 192


def build(input_spec):
    seed = input_spec["seed"]
    moves = lcg_stream(seed, ITERS, 100)
    positions = lcg_stream(seed + 7, ITERS, BOARD)

    mb = ModuleBuilder("go")
    mb.global_var("moves", ITERS, init=moves)
    mb.global_var("positions", ITERS, init=positions)
    mb.global_var("board", BOARD, init=lcg_stream(seed + 13, BOARD, 1000))
    mb.global_var("eval_score", 1, init=5)
    mb.global_var("history", 1, init=1)
    add_result_slots(mb, ITERS)

    def body(fb):
        addr = fb.add("@moves", "i")
        move = fb.load(addr)
        paddr = fb.add("@positions", "i")
        pos = fb.load(paddr)
        # Evaluate the candidate position (epoch-local work).
        baddr = fb.add("@board", pos)
        stone = fb.load(baddr)
        local = emit_filler(fb, 40, salt=3)
        mix = fb.binop("xor", local, stone)
        # Frequent dependence 1: the evaluation accumulator, updated in
        # ~85% of epochs mid-epoch.
        rare = fb.binop("lt", move, 85)
        fb.condbr(rare, "score", "noscore")
        fb.block("score")
        score = fb.load("@eval_score")
        bump = fb.mod(mix, 97)
        score2 = fb.add(score, bump)
        score3 = fb.mod(score2, 65536)
        fb.store("@eval_score", score3)
        fb.jump("hist")
        fb.block("noscore")
        fb.jump("hist")
        # Frequent dependence 2: the history heuristic counter (~60%).
        fb.block("hist")
        h_cond = fb.binop("lt", move, 60)
        fb.condbr(h_cond, "hupd", "tail")
        fb.block("hupd")
        hist = fb.load("@history")
        hist2 = fb.binop("xor", hist, mix)
        hist3 = fb.binop("or", hist2, 1)
        fb.store("@history", hist3)
        fb.jump("tail")
        # Infrequent dependence: board update in ~4% of epochs.
        fb.block("tail")
        b_cond = fb.binop("lt", move, 4)
        fb.condbr(b_cond, "bupd", "wrap")
        fb.block("bupd")
        upd = fb.add(stone, 1)
        fb.store(baddr, upd)
        fb.jump("wrap")
        fb.block("wrap")
        tail = emit_filler(fb, 24, salt=9)
        deposit = fb.binop("xor", tail, mix)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="go",
        spec_name="099.go",
        build=build,
        train_input={"seed": 101},
        ref_input={"seed": 707},
        coverage=0.22,
        seq_overhead=0.90,
        description=(
            "Frequent mid-epoch true dependences on an evaluation "
            "accumulator and history counter; compiler sync wins."
        ),
    )
)
