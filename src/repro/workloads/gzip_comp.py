"""GZIP_COMP (SPEC 164.gzip, compression) — input-sensitive dependences.

Signature (paper Sections 4.1-4.2): compression's control flow "is
complex and sensitive to the input set, and this in turn determines
which loads and stores are dependent; hence different profiling input
sets can lead the compiler to synchronizing different pairs of loads
and stores" — the one benchmark where the T (train-profiled) and C
(ref-profiled) bars diverge.  Additionally the packed window-state
line is falsely shared across epochs, which only the hardware's
PC-indexed synchronization handles, giving it the best result.

Realization: each epoch consumes one input symbol.  *Literal* symbols
update the literal-frequency head; *match* symbols update the match
dictionary head — the train input is literal-heavy (the match path is
below the 5% profiling threshold) while the ref input is match-heavy,
so the train profile synchronizes the wrong pair.  Window refills
(~25% of epochs) read one status word and write an adjacent counter
word of the packed window line at the very top of the epoch: false
sharing with no word-level dependence, invisible to the compiler's
profile but violating at line granularity, and each violation squashes
the epoch's whole speculative state.  Only the hardware removes those
failures, so hardware synchronization wins overall.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 240


def build(input_spec):
    seed = input_spec["seed"]
    match_percent = input_spec["match_percent"]
    stream = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("gzip_comp")
    mb.global_var("stream", ITERS, init=stream)
    mb.global_var("lit_head", 1, init=3)
    mb.global_var("match_head", 1, init=9)
    mb.global_var("window_state", 8, init=[2, 4, 6, 8, 0, 0, 0, 0])
    add_result_slots(mb, ITERS)
    mb.global_var("match_cut", 1, init=match_percent)

    def body(fb):
        saddr = fb.add("@stream", "i")
        symbol = fb.load(saddr)
        cut = fb.load("@match_cut")
        # Early: every epoch bumps its window counter (words 0-3 of
        # the packed line); those words are never read in the region.
        slot = fb.mod("i", 4)
        waddr = fb.add("@window_state", slot)
        bump = fb.add(symbol, "i")
        fb.store(waddr, bump)
        front = emit_filler(fb, 52, salt=21)
        # Input-dependent dependence late in the epoch: literal vs
        # match head update.  Late placement keeps the hardware's
        # stall-until-commit cheap; which head is hot depends on the
        # input symbol mix (train vs ref).
        is_match = fb.binop("lt", symbol, cut)
        fb.condbr(is_match, "match", "literal")
        fb.block("match")
        mh = fb.load("@match_head")
        mh2 = fb.add(mh, symbol)
        mh3 = fb.mod(mh2, 32768)
        fb.store("@match_head", mh3)
        fb.jump("after")
        fb.block("literal")
        lh = fb.load("@lit_head")
        lh2 = fb.binop("xor", lh, symbol)
        lh3 = fb.add(lh2, 1)
        fb.store("@lit_head", lh3)
        fb.jump("after")
        fb.block("after")
        mid = emit_filler(fb, 8, salt=6)
        # Late window-status read (~35% of epochs): words 4-7 of the
        # same packed line the counters live on — false sharing with no
        # word-level dependence.  Violated at the producers' commits
        # after most of the epoch's work is done; only the hardware's
        # (late, nearly free) stall removes these failures.
        rem = fb.mod(symbol, 20)
        refill = fb.binop("lt", rem, 7)
        fb.condbr(refill, "wstat", "tail")
        fb.block("wstat")
        sslot0 = fb.mod(symbol, 4)
        sslot = fb.add(sslot0, 4)
        saddr2 = fb.add("@window_state", sslot)
        fb.load(saddr2)  # reads the shared state for its timing effect
        fb.jump("tail")
        fb.block("tail")
        deposit0 = fb.binop("xor", front, mid)
        deposit = fb.add(deposit0, symbol)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="gzip_comp",
        spec_name="164.gzip-comp",
        build=build,
        # Train input: literal-heavy (matches in only 3% of epochs, under
        # the 5% threshold).  Ref input: match-heavy (60% matches, 40%
        # literals — both sides frequent, but the *match* head is hot).
        train_input={"seed": 401, "match_percent": 3},
        ref_input={"seed": 911, "match_percent": 60},
        coverage=0.25,
        seq_overhead=0.98,
        description=(
            "Which dictionary head is hot depends on the input symbol "
            "mix, so the train profile synchronizes the wrong pair; a "
            "false-shared window line keeps hardware sync on top."
        ),
    )
)
