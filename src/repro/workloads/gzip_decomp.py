"""GZIP_DECOMP (SPEC 164.gzip, decompression) — early forwardable value.

Signature (paper Section 4.2): "In GZIP_DECOMPRESS, the compiler and
the hardware both insert synchronization, however, the compiler is able
to speculatively forward the desired value much earlier than our
hardware can.  This avoids over-synchronization, resulting in better
performance."

Realization: every epoch advances a decompression window pointer — the
producer store executes near the *start* of the epoch, and the
consumer load is the first thing the next epoch does.  Compiler-
inserted synchronization forwards the pointer as soon as it is stored,
so epochs overlap almost fully; hardware synchronization stalls the
load until the previous epoch *commits*, serializing at whole-epoch
granularity.  The bulk of the epoch is independent output production.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 220
OUT = 8


def build(input_spec):
    seed = input_spec["seed"]
    codes = lcg_stream(seed, ITERS, 64)

    mb = ModuleBuilder("gzip_decomp")
    mb.global_var("codes", ITERS, init=codes)
    mb.global_var("window_ptr", 1, init=7)
    mb.global_var("output", ITERS * OUT)
    add_result_slots(mb, ITERS)

    def body(fb):
        # Consumer load and producer store both at the top of the epoch:
        # the window pointer advances by a code-dependent amount.
        caddr = fb.add("@codes", "i")
        code = fb.load(caddr)
        wptr = fb.load("@window_ptr")
        step = fb.add(code, 1)
        nptr0 = fb.add(wptr, step)
        nptr = fb.mod(nptr0, 65536)
        fb.store("@window_ptr", nptr)
        # Long independent tail: expand the code into the private
        # output block.
        local = emit_filler(fb, 60, salt=7)
        expanded = fb.binop("xor", local, nptr)
        base = fb.mul("i", OUT)
        for k in range(OUT):
            offs = fb.add(base, k)
            addr = fb.add("@output", offs)
            word = fb.binop("shr", expanded, k % 7)
            fb.store(addr, word)
        deposit = fb.add(expanded, code)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="gzip_decomp",
        spec_name="164.gzip-decomp",
        build=build,
        train_input={"seed": 73},
        ref_input={"seed": 389},
        coverage=0.99,
        seq_overhead=0.97,
        description=(
            "A window pointer produced at epoch start and consumed at "
            "the next epoch's start: compiler forwarding overlaps "
            "epochs almost fully; hardware stall-until-commit "
            "serializes them."
        ),
    )
)
