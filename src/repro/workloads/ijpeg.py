"""IJPEG (SPEC 132.ijpeg) — embarrassingly parallel block compression.

Signature (paper Table 2): 97% coverage and a large TLS speedup (1.73)
without any memory synchronization — epochs compress disjoint image
blocks, reading a private input region and writing a private output
region, with only a rare (~2% of epochs) shared quality-statistics
update.  Failed speculation is not a limiter, so all schemes perform
about the same; the benchmark anchors the "already parallel" end of
the spectrum.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 200
BLOCK = 8  # words per image block (one cache line)


def build(input_spec):
    seed = input_spec["seed"]
    pixels = lcg_stream(seed, ITERS * BLOCK, 256)
    flags = lcg_stream(seed + 5, ITERS, 100)

    mb = ModuleBuilder("ijpeg")
    mb.global_var("image", ITERS * BLOCK, init=pixels)
    mb.global_var("output", ITERS * BLOCK)
    mb.global_var("flags", ITERS, init=flags)
    mb.global_var("quality_stat", 1, init=17)
    add_result_slots(mb, ITERS)

    def body(fb):
        base = fb.mul("i", BLOCK)
        # DCT-like pass over the private block.
        acc = fb.const(0)
        for k in range(BLOCK):
            offs = fb.add(base, k)
            addr = fb.add("@image", offs)
            pixel = fb.load(addr)
            scaled = fb.mul(pixel, (k * 2 + 3))
            acc = fb.add(acc, scaled)
        local = emit_filler(fb, 36, salt=4)
        coeff = fb.binop("xor", acc, local)
        # Write the private output block.
        for k in range(BLOCK):
            offs = fb.add(base, k)
            addr = fb.add("@output", offs)
            shifted = fb.binop("shr", coeff, k % 5)
            fb.store(addr, shifted)
        # Rare shared-statistics update (~2% of epochs).
        faddr = fb.add("@flags", "i")
        flag = fb.load(faddr)
        rare = fb.binop("lt", flag, 2)
        fb.condbr(rare, "stat", "skip")
        fb.block("stat")
        stat = fb.load("@quality_stat")
        stat2 = fb.add(stat, coeff)
        stat3 = fb.mod(stat2, 9973)
        fb.store("@quality_stat", stat3)
        fb.jump("skip")
        fb.block("skip")
        emit_slot_store(fb, coeff)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="ijpeg",
        spec_name="132.ijpeg",
        build=build,
        train_input={"seed": 31},
        ref_input={"seed": 613},
        coverage=0.97,
        seq_overhead=0.52,
        description=(
            "Disjoint per-epoch block compression with a ~2% shared "
            "statistics update: large TLS speedup, no scheme matters."
        ),
    )
)
