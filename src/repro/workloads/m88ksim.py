"""M88KSIM (SPEC 124.m88ksim) — false sharing dominates violations.

Signature (paper Section 4.2): "In M88KSIM, violations are not caused
by true data dependences, rather they are caused by false sharing.  The
compiler is attempting to synchronize true dependences, while the
hardware is tracking dependences at a cache line granularity."

The parallelized loop simulates instruction dispatch over a packed
per-CPU state block: each epoch *reads* one status word and *writes* an
adjacent counter word of the same cache line.  No word is both read and
written across epochs, so the word-granularity dependence profile is
empty and compiler synchronization has nothing to do — but every store
invalidates the line that every later epoch has speculatively loaded,
so line-granularity violation detection fires constantly.
Hardware-inserted synchronization stalls the status-word loads until
the epoch is non-speculative and wins (the paper's best-for-hardware
benchmark); fixing the layout itself is, as the paper notes, a job for
memory layout optimization rather than synchronization.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 240
#: one cache line of packed simulator state: words 0-3 are read-only
#: status fields, words 4-7 are write-only cycle counters.
STATE_WORDS = 8


def build(input_spec):
    seed = input_spec["seed"]
    opcodes = lcg_stream(seed, ITERS, 16)

    mb = ModuleBuilder("m88ksim")
    mb.global_var("opcodes", ITERS, init=opcodes)
    mb.global_var("cpu_state", STATE_WORDS, init=[3, 5, 7, 11, 0, 0, 0, 0])
    mb.global_var("memory_image", 512, init=lcg_stream(seed + 3, 512, 4096))
    add_result_slots(mb, ITERS)

    def body(fb):
        addr = fb.add("@opcodes", "i")
        opcode = fb.load(addr)
        # Decode/execute work against the simulated memory image.
        maddr0 = fb.mul(opcode, 31)
        maddr1 = fb.mod(maddr0, 512)
        maddr = fb.add("@memory_image", maddr1)
        word = fb.load(maddr)
        local = emit_filler(fb, 56, salt=5)
        mixed = fb.binop("xor", local, word)
        # System-register instructions (~70% of the stream) read a
        # status word and write an adjacent counter word of the same
        # packed line: false sharing, no word-level dependence.
        sysop = fb.binop("lt", opcode, 11)  # opcodes 0-10 of 16
        fb.condbr(sysop, "sysreg", "plain")
        fb.block("sysreg")
        unit = fb.mod("i", 4)
        raddr = fb.add("@cpu_state", unit)
        status = fb.load(raddr)
        mixed2 = fb.add(mixed, status)
        wexact = fb.add(unit, 4)
        waddr = fb.add("@cpu_state", wexact)
        fb.store(waddr, mixed2)
        fb.jump("join")
        fb.block("plain")
        fb.jump("join")
        fb.block("join")
        tail = emit_filler(fb, 16, salt=8)
        deposit = fb.binop("xor", tail, mixed)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="m88ksim",
        spec_name="124.m88ksim",
        build=build,
        train_input={"seed": 211},
        ref_input={"seed": 877},
        coverage=0.56,
        seq_overhead=0.82,
        description=(
            "Pure false sharing on a packed state line: no word-level "
            "dependences for the compiler, constant line-level "
            "violations that only hardware synchronization removes."
        ),
    )
)
