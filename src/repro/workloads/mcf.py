"""MCF (SPEC 181.mcf) — memory-bound epochs, modest dependences.

Signature (paper Table 2: 89% coverage, region speedups around 1.2):
network-simplex iterations walk large pointer-linked arc structures,
so epochs are dominated by secondary-cache and memory misses ("other"
slots) rather than failed speculation.  A modest (~30% of epochs)
total-cost accumulator dependence benefits a little from either
synchronization scheme; neither changes the memory-bound character, so
compiler and hardware synchronization perform comparably.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_array_walk,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 180
ARCS = 60000  # large enough that strided walks miss the secondary cache


def build(input_spec):
    seed = input_spec["seed"]
    picks = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("mcf")
    mb.global_var("picks", ITERS, init=picks)
    mb.global_var("arcs", ARCS)
    mb.global_var("total_cost", 1, init=3)
    add_result_slots(mb, ITERS)

    def body(fb):
        paddr = fb.add("@picks", "i")
        pick = fb.load(paddr)
        # Memory-bound arc walk: large strides defeat both cache levels.
        walked = emit_array_walk(
            fb, "arcs", "i", stride=1021 * 8, length=ARCS, touches=10
        )
        local = emit_filler(fb, 22, salt=19)
        reduced = fb.binop("xor", walked, local)
        # Dependence: total cost accumulator, ~55% of epochs.
        improves = fb.binop("lt", pick, 55)
        fb.condbr(improves, "upd", "skip")
        fb.block("upd")
        cost = fb.load("@total_cost")
        cost2 = fb.add(cost, pick)
        cost3 = fb.mod(cost2, 1000003)
        fb.store("@total_cost", cost3)
        fb.jump("skip")
        fb.block("skip")
        deposit = fb.add(reduced, pick)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="mcf",
        spec_name="181.mcf",
        build=build,
        train_input={"seed": 271},
        ref_input={"seed": 733},
        coverage=0.89,
        seq_overhead=0.99,
        description=(
            "Memory-latency-bound arc walks with a ~55% cost-"
            "accumulator dependence; schemes comparable."
        ),
    )
)
