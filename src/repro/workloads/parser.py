"""PARSER (SPEC 197.parser) — the paper's free-list example (Figure 4).

Signature (paper Section 2.3 and Table 2: 37% coverage, region speedup
~2.1): parsing epochs allocate and conditionally release elements of a
shared free list.  The global list head is read and written through
*aliased* names inside ``free_element`` and ``use_element`` (reached
through different call paths), exactly the motivating example of the
paper: the compiler profiles the dependences context-sensitively,
groups the head's loads and stores, clones ``free_element``/``work``/
``use_element`` along the hot call paths, and forwards the head between
epochs.  Compiler synchronization converts almost all failed
speculation into short forwarding stalls; with the list operations near
the end of each epoch the hardware's stall is also cheap, so the two
schemes end up comparable, as in the paper's Figure 10.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 220
POOL = 16  # arena elements; each is [next, payload]


def build(input_spec):
    seed = input_spec["seed"]
    words = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("parser")
    mb.global_var("free_list", 1, init=0)
    mb.global_var("arena", POOL * 2)
    mb.global_var("words", ITERS, init=words)
    add_result_slots(mb, ITERS)

    fb = mb.function("free_element", ["e"])
    fb.block("entry")
    head = fb.load("@free_list")
    fb.store("e", head, offset=0)  # e->next = free_list
    fb.store("@free_list", "e")    # free_list = e
    fb.ret()

    fb = mb.function("use_element", [])
    fb.block("entry")
    head = fb.load("@free_list")
    empty = fb.binop("eq", head, 0)
    fb.condbr(empty, "none", "pop")
    fb.block("pop")
    nxt = fb.load(head, offset=0)
    fb.store("@free_list", nxt)    # free_list = element->next
    fb.ret(head)
    fb.block("none")
    fb.ret(0)

    fb = mb.function("work", ["w"])
    fb.block("entry")
    busy = fb.mod("w", 2)
    fb.condbr(busy, "take", "idle")
    fb.block("take")
    element = fb.call("use_element", [])
    fb.ret(element)
    fb.block("idle")
    fb.ret(0)

    def setup(fb):
        fb.const(0, dest="k")
        fb.jump("seed_list")
        fb.block("seed_list")
        offs = fb.mul("k", 2)
        element = fb.add("@arena", offs)
        fb.call("free_element", [element], dest=False)
        fb.add("k", 1, dest="k")
        more = fb.binop("lt", "k", POOL // 2)
        fb.condbr(more, "seed_list", "seeded")
        fb.block("seeded")

    def body(fb):
        waddr = fb.add("@words", "i")
        word = fb.load(waddr)
        # The bulk of the epoch parses the word ...
        parsed = emit_filler(fb, 52, salt=29)
        # ... and the free-list operations happen near the end, so a
        # stalled or forwarded list head costs little parallelism.
        slot = fb.mod("i", POOL)
        offs = fb.mul(slot, 2)
        element = fb.add("@arena", offs)
        fb.call("free_element", [element], dest=False)
        used = fb.call("work", [word])
        deposit0 = fb.binop("xor", parsed, used)
        deposit = fb.add(deposit0, word)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body, setup=setup)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="parser",
        spec_name="197.parser",
        build=build,
        train_input={"seed": 83},
        ref_input={"seed": 541},
        coverage=0.37,
        seq_overhead=0.84,
        description=(
            "The paper's Figure 4 free-list pattern: aliased list-head "
            "accesses through cloneable call paths; compiler sync "
            "converts failures into short forwards."
        ),
    )
)
