"""PERLBMK (SPEC 253.perlbmk) — deep call paths, early-produced value.

Signature (paper Section 4.2 lists PERLBMK among the compiler-won
benchmarks; Table 2: 29% coverage): interpreter-dispatch epochs update
a shared symbol-table generation counter through a two-level call chain
(``dispatch`` -> ``intern``), in ~70% of epochs, with the producing
store early in the epoch.  The compiler clones the chain
context-sensitively and forwards the counter right after the store, so
consumers barely stall; the hardware's stall-until-commit delays the
same consumers a whole epoch, and the deep call path makes its
violating-load table churn.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 220


def build(input_spec):
    seed = input_spec["seed"]
    opcodes = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("perlbmk")
    mb.global_var("opcodes", ITERS, init=opcodes)
    mb.global_var("symtab_gen", 1, init=11)
    mb.global_var("op_table", 96, init=lcg_stream(seed + 37, 96, 8192))
    add_result_slots(mb, ITERS)

    fb = mb.function("intern", ["h"])
    fb.block("entry")
    gen = fb.load("@symtab_gen")
    mixed = fb.binop("xor", gen, "h")
    gen2 = fb.add(mixed, 1)
    fb.store("@symtab_gen", gen2)
    fb.ret(gen2)

    fb = mb.function("dispatch", ["op"])
    fb.block("entry")
    taddr0 = fb.mod("op", 96)
    taddr = fb.add("@op_table", taddr0)
    handler = fb.load(taddr)
    names = fb.binop("lt", "op", 70)
    fb.condbr(names, "do_intern", "plain")
    fb.block("do_intern")
    token = fb.call("intern", [handler])
    fb.ret(token)
    fb.block("plain")
    fb.ret(handler)

    def body(fb):
        oaddr = fb.add("@opcodes", "i")
        opcode = fb.load(oaddr)
        # The interning (and its symtab store) happens up front ...
        token = fb.call("dispatch", [opcode])
        # ... and the bulk of the epoch is independent interpretation.
        local = emit_filler(fb, 66, salt=31)
        deposit0 = fb.binop("xor", local, token)
        deposit = fb.add(deposit0, opcode)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="perlbmk",
        spec_name="253.perlbmk",
        build=build,
        train_input={"seed": 97},
        ref_input={"seed": 641},
        coverage=0.29,
        seq_overhead=1.00,
        description=(
            "A ~70% symbol-table dependence produced early through a "
            "two-level call chain; cloned forwarding beats "
            "stall-until-commit."
        ),
    )
)
