"""TWOLF (SPEC 300.twolf) — conservative synchronization costs, not wins.

Signature (paper Section 4.2): "Software-inserted synchronization can
be conservative — it synchronizes dependences which may or may not
actually happen at runtime, depending on the timing of the epochs.  If
a load tends to be executed only when all prior epochs have completed,
then it will rarely cause a violation.  In such a case, the
synchronization code just adds extra overhead — this is the cause of
the small performance degradation in TWOLF."

Realization: each epoch stores a per-phase cost slot at its *start*
and, at its very *end*, loads the slot written two epochs earlier (the
slots rotate over four cache lines, giving a distance-2 dependence).
By the time the late load executes, the producer epoch has nearly
always committed, so plain TLS rarely violates; but the dependence is
frequent in the (timing-oblivious) data-dependence profile, so the
compiler dutifully synchronizes it — and because the forwarded address
rotates, the runtime check rejects the forward anyway.  The
synchronization is pure overhead every epoch, reproducing TWOLF's
small degradation.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 220


def build(input_spec):
    seed = input_spec["seed"]
    swaps = lcg_stream(seed, ITERS, 100)

    mb = ModuleBuilder("twolf")
    mb.global_var("swaps", ITERS, init=swaps)
    # Four rotating cost slots, one cache line apart.
    mb.global_var("cost_slots", 32, init=[21] * 32)
    add_result_slots(mb, ITERS)

    def body(fb):
        saddr = fb.add("@swaps", "i")
        swap = fb.load(saddr)
        # Producer store at the very start of the epoch: phase slot i%4.
        wphase = fb.mod("i", 4)
        wslot = fb.mul(wphase, 8)
        waddr = fb.add("@cost_slots", wslot)
        bump = fb.add(swap, "i")
        seeded = fb.mod(bump, 32768)
        fb.store(waddr, seeded)
        # Long independent middle.
        local = emit_filler(fb, 78, salt=59)
        churn = fb.binop("xor", local, swap)
        # Consumer load at the very end, of the slot written two epochs
        # ago: by now that epoch has almost always committed, so
        # speculation almost never fails.
        rbase = fb.add("i", 2)
        rphase = fb.mod(rbase, 4)
        rslot = fb.mul(rphase, 8)
        raddr = fb.add("@cost_slots", rslot)
        cost = fb.load(raddr)
        deposit = fb.add(churn, cost)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="twolf",
        spec_name="300.twolf",
        build=build,
        train_input={"seed": 151},
        ref_input={"seed": 947},
        coverage=0.19,
        seq_overhead=0.84,
        description=(
            "Early store, end-of-epoch load: rarely violates under "
            "plain TLS; compiler sync is pure overhead (small "
            "degradation)."
        ),
    )
)
