"""VPR_PLACE (SPEC 175.vpr, placement) — line-granular cost-grid sharing.

Signature (paper Section 4.2 groups VPR_PLACE with the benchmarks where
hardware-inserted synchronization wins; Table 2 shows compiler
synchronization leaving its region time unchanged): simulated-annealing
epochs update the cost of the *moved* cell early and probe the cost of
a random *candidate* cell late in the epoch.  The probed word almost
never equals a recently-moved word — so word-granularity compiler
synchronization has nothing useful to forward — but it frequently
shares a cache line with one, so the late probe is violated at commit
time after most of the epoch's work is done.  The hardware's
violating-load table stalls the probe until the epoch is
non-speculative, which this late in the epoch costs almost nothing: the
paper's best-for-hardware behaviour.  A modest accept-counter
dependence (~25% of epochs) gives the compiler a small win on the side.
"""

from __future__ import annotations

from repro.ir.builder import ModuleBuilder
from repro.workloads.base import (
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)

ITERS = 240
GRID = 16  # cost-grid words: 2 cache lines, so probes collide often


def build(input_spec):
    seed = input_spec["seed"]
    moves = lcg_stream(seed, ITERS, GRID)
    probes = lcg_stream(seed + 5, ITERS, GRID)
    temps = lcg_stream(seed + 11, ITERS, 100)

    mb = ModuleBuilder("vpr_place")
    mb.global_var("moves", ITERS, init=moves)
    mb.global_var("probes", ITERS, init=probes)
    mb.global_var("temps", ITERS, init=temps)
    mb.global_var("cost_grid", GRID, init=lcg_stream(seed + 17, GRID, 500))
    mb.global_var("accepts", 1, init=1)
    add_result_slots(mb, ITERS)

    def body(fb):
        maddr = fb.add("@moves", "i")
        cell = fb.load(maddr)
        taddr = fb.add("@temps", "i")
        temp = fb.load(taddr)
        # Early: commit the moved cell's new cost.
        waddr = fb.add("@cost_grid", cell)
        moved = fb.add(cell, temp)
        fb.store(waddr, moved)
        # Long middle: evaluate the placement.
        local = emit_filler(fb, 44, salt=11)
        delta = fb.binop("xor", local, temp)
        # Late: probe a candidate cell's cost.  The word rarely matches
        # a recent move, but the line usually holds one.
        paddr0 = fb.add("@probes", "i")
        pcell = fb.load(paddr0)
        paddr = fb.add("@cost_grid", pcell)
        pcost = fb.load(paddr)
        # True dependence at the very end: accepted-move counter,
        # ~25% of epochs (cheap for either synchronization scheme).
        accept = fb.binop("lt", temp, 25)
        fb.condbr(accept, "acc", "rej")
        fb.block("acc")
        count = fb.load("@accepts")
        count2 = fb.add(count, 1)
        fb.store("@accepts", count2)
        fb.jump("out")
        fb.block("rej")
        fb.jump("out")
        fb.block("out")
        deposit0 = fb.add(delta, pcost)
        deposit = fb.binop("xor", deposit0, cell)
        emit_slot_store(fb, deposit)

    standard_region(mb, ITERS, body)
    return mb.build()


WORKLOAD = register(
    Workload(
        name="vpr_place",
        spec_name="175.vpr-place",
        build=build,
        train_input={"seed": 53},
        ref_input={"seed": 769},
        coverage=0.99,
        seq_overhead=0.97,
        description=(
            "Early cost-grid stores and late probes share lines but "
            "not words: expensive commit-time violations that only the "
            "hardware's late, cheap stall removes."
        ),
    )
)
