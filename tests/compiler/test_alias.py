"""Base-object alias analysis: precision, soundness vs the profiler."""

import pytest

from repro.compiler.memdep.alias import (
    HEAP,
    TOP,
    UNKNOWN,
    analyze_aliases,
    candidate_pair_fraction,
    may_alias,
)
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import Load, Store


class TestLattice:
    def test_disjoint_bases_do_not_alias(self):
        assert not may_alias(frozenset({"a"}), frozenset({"b"}))

    def test_shared_base_aliases(self):
        assert may_alias(frozenset({"a", "b"}), frozenset({"b"}))

    def test_unknown_aliases_everything_nonempty(self):
        assert may_alias(TOP, frozenset({"a"}))
        assert may_alias(frozenset({"a"}), frozenset({UNKNOWN}))

    def test_empty_never_aliases(self):
        assert not may_alias(frozenset(), TOP)
        assert not may_alias(TOP, frozenset())


def refs_of(module, function, kind):
    return [
        i for i in module.function(function).instructions() if isinstance(i, kind)
    ]


class TestAnalysis:
    def test_distinct_globals_distinguished(self):
        mb = ModuleBuilder()
        mb.global_var("a", 8)
        mb.global_var("b", 8)
        fb = mb.function("main")
        fb.block("entry")
        pa = fb.add("@a", 2)
        pb = fb.add("@b", 2)
        fb.store(pa, 1)
        la = fb.load(pb)
        fb.ret(la)
        module = mb.build()
        analysis = analyze_aliases(module)
        store = refs_of(module, "main", Store)[0]
        load = refs_of(module, "main", Load)[0]
        assert analysis.bases_of_ref(store.iid) == frozenset({"a"})
        assert analysis.bases_of_ref(load.iid) == frozenset({"b"})
        assert not analysis.refs_may_alias(store.iid, load.iid)

    def test_same_base_through_arithmetic(self):
        mb = ModuleBuilder()
        mb.global_var("arr", 16)
        fb = mb.function("main", ["i"])
        fb.block("entry")
        off = fb.mul("i", 2)
        addr = fb.add("@arr", off)
        fb.store(addr, 7)
        other = fb.add("@arr", 3)
        value = fb.load(other)
        fb.ret(value)
        module = mb.build()
        analysis = analyze_aliases(module)
        store = refs_of(module, "main", Store)[0]
        load = refs_of(module, "main", Load)[0]
        assert analysis.refs_may_alias(store.iid, load.iid)

    def test_loaded_pointer_is_unknown(self):
        mb = ModuleBuilder()
        mb.global_var("head", 1)
        fb = mb.function("main")
        fb.block("entry")
        p = fb.load("@head")
        v = fb.load(p)  # pointer came from memory: unknown base
        fb.ret(v)
        module = mb.build()
        analysis = analyze_aliases(module)
        loads = refs_of(module, "main", Load)
        assert analysis.bases_of_ref(loads[0].iid) == frozenset({"head"})
        assert UNKNOWN in analysis.bases_of_ref(loads[1].iid)

    def test_alloc_is_heap(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        p = fb.alloc(4)
        fb.store(p, 1)
        fb.ret(0)
        module = mb.build()
        analysis = analyze_aliases(module)
        store = refs_of(module, "main", Store)[0]
        assert analysis.bases_of_ref(store.iid) == frozenset({HEAP})

    def test_interprocedural_parameter_binding(self):
        mb = ModuleBuilder()
        mb.global_var("arena", 8)
        mb.global_var("other", 8)
        fb = mb.function("write_to", ["p"])
        fb.block("entry")
        fb.store("p", 1)
        fb.ret()
        fb = mb.function("main")
        fb.block("entry")
        fb.call("write_to", ["@arena"], dest=False)
        v = fb.load("@other")
        fb.ret(v)
        module = mb.build()
        analysis = analyze_aliases(module)
        store = refs_of(module, "write_to", Store)[0]
        load = refs_of(module, "main", Load)[0]
        assert analysis.bases_of_ref(store.iid) == frozenset({"arena"})
        assert not analysis.refs_may_alias(store.iid, load.iid)

    def test_multiple_call_sites_merge(self):
        mb = ModuleBuilder()
        mb.global_var("a", 8)
        mb.global_var("b", 8)
        fb = mb.function("touch", ["p"])
        fb.block("entry")
        fb.store("p", 1)
        fb.ret()
        fb = mb.function("main")
        fb.block("entry")
        fb.call("touch", ["@a"], dest=False)
        fb.call("touch", ["@b"], dest=False)
        fb.ret(0)
        module = mb.build()
        analysis = analyze_aliases(module)
        store = refs_of(module, "touch", Store)[0]
        assert analysis.bases_of_ref(store.iid) == frozenset({"a", "b"})

    def test_terminates_on_loops(self):
        mb = ModuleBuilder()
        mb.global_var("g", 8)
        fb = mb.function("main", ["n"])
        fb.block("entry")
        fb.move("@g", dest="p")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.add("p", 1, dest="p")
        fb.store("p", "i")
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", "n")
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret(0)
        module = mb.build()
        analysis = analyze_aliases(module)
        assert analysis.iterations < 50
        store = refs_of(module, "main", Store)[0]
        assert analysis.bases_of_ref(store.iid) == frozenset({"g"})


class TestSoundnessAgainstProfiler:
    @pytest.mark.parametrize("name", ["parser", "go", "gzip_comp"])
    def test_every_profiled_dependence_is_a_may_alias_pair(self, name):
        """Soundness: the dynamic profile never contradicts the static
        analysis — the property that makes alias-guided profiling safe."""
        from repro.experiments.runner import bundle_for

        bundle = bundle_for(name)
        module = bundle.compiled.baseline
        analysis = analyze_aliases(module)
        for profile in bundle.compiled.profile_ref.values():
            for (store_ref, load_ref) in profile.pair_epochs:
                assert analysis.refs_may_alias(store_ref[0], load_ref[0]), (
                    store_ref,
                    load_ref,
                )

    def test_candidate_fraction_below_one(self):
        """The analysis prunes a real share of the pair space."""
        from repro.experiments.runner import bundle_for

        stats = candidate_pair_fraction(bundle_for("go").compiled.baseline)
        assert 0.0 < stats.fraction < 1.0
        assert stats.total_pairs == stats.loads * stats.stores
