"""Function cloning utilities and the end-to-end compilation pipeline."""

from repro.compiler.clone import (
    clone_function,
    clone_instruction,
    find_by_origin,
    fresh_clone_name,
)
from repro.compiler.pipeline import compile_workload
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import Call, Load
from repro.ir.interpreter import run_module
from repro.tlssim.sequential import simulate_sequential, simulate_tls
from repro.workloads.base import lcg_stream


class TestCloneUtilities:
    def make_module(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("leaf", ["x"])
        fb.block("entry")
        v = fb.load("@g")
        r = fb.add(v, "x")
        fb.ret(r)
        fb = mb.function("main")
        fb.block("entry")
        r = fb.call("leaf", [1])
        fb.ret(r)
        return mb.build()

    def test_clone_instruction_fresh_iid_same_origin(self):
        module = self.make_module()
        original = next(
            i for i in module.function("leaf").instructions() if isinstance(i, Load)
        )
        cloned = clone_instruction(original)
        assert cloned.iid is None  # assigned on attach
        assert cloned.origin_iid == original.iid

    def test_clone_function_structure(self):
        module = self.make_module()
        clone = clone_function(module, "leaf", "leaf$sync1")
        assert clone.name == "leaf$sync1"
        assert clone.cloned_from == "leaf"
        assert list(clone.blocks) == list(module.function("leaf").blocks)
        assert clone.instruction_count() == module.function("leaf").instruction_count()

    def test_clone_of_clone_tracks_root(self):
        module = self.make_module()
        clone_function(module, "leaf", "leaf$sync1")
        second = clone_function(module, "leaf$sync1", "leaf$sync2")
        assert second.cloned_from == "leaf"

    def test_find_by_origin(self):
        module = self.make_module()
        original = next(
            i for i in module.function("leaf").instructions() if isinstance(i, Load)
        )
        clone = clone_function(module, "leaf", "leaf$sync1")
        found = find_by_origin(clone, original.iid)
        assert found is not None and found.iid != original.iid

    def test_fresh_clone_name(self):
        module = self.make_module()
        assert fresh_clone_name(module, "leaf", tag="sync") == "leaf$sync1"
        clone_function(module, "leaf", "leaf$sync1")
        assert fresh_clone_name(module, "leaf", tag="sync") == "leaf$sync2"

    def test_clone_behaviour_identical(self):
        module = self.make_module()
        clone_function(module, "leaf", "leaf$sync1")
        call = next(
            i for i in module.function("main").instructions() if isinstance(i, Call)
        )
        call.callee = "leaf$sync1"
        assert run_module(module).return_value == 1


def tiny_workload(input_spec):
    """A miniature but complete workload for pipeline tests."""
    seed = input_spec["seed"]
    data = lcg_stream(seed, 40, 100)
    mb = ModuleBuilder("tiny")
    mb.global_var("data", 40, init=data)
    mb.global_var("shared", 1, init=2)
    mb.global_var("out", 40 * 8)
    fb = mb.function("bump", ["v"])
    fb.block("entry")
    s = fb.load("@shared")
    s2 = fb.add(s, "v")
    s3 = fb.mod(s2, 1009)
    fb.store("@shared", s3)
    fb.ret(s3)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    a = fb.add("@data", "i")
    v = fb.load(a)
    acc = fb.const(1)
    for k in range(24):
        acc = fb.binop(("add", "xor", "mul", "sub")[k % 4], acc, k + 1)
    hot = fb.binop("lt", v, 70)
    fb.condbr(hot, "upd", "skip")
    fb.block("upd")
    fb.call("bump", [v])
    fb.jump("skip")
    fb.block("skip")
    off = fb.mul("i", 8)
    slot = fb.add("@out", off)
    mix = fb.binop("xor", acc, v)
    fb.store(slot, mix)
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", 40)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    r = fb.load("@shared")
    fb.ret(r)
    return mb.build()


class TestPipeline:
    def compiled(self):
        if not hasattr(TestPipeline, "_cache"):
            TestPipeline._cache = compile_workload(
                "tiny", tiny_workload, {"seed": 3}, {"seed": 44}
            )
        return TestPipeline._cache

    def test_loop_selected(self):
        compiled = self.compiled()
        assert compiled.selected == [("main", "loop")]

    def test_all_binaries_equivalent(self):
        compiled = self.compiled()
        reference = run_module(compiled.seq).return_value
        for attr in ("baseline", "sync_ref", "sync_train"):
            assert run_module(getattr(compiled, attr)).return_value == reference

    def test_profiles_found_dependence(self):
        compiled = self.compiled()
        profile = compiled.profile_ref[("main", "loop")]
        assert profile.frequent_pairs(0.05)

    def test_train_ref_iid_correspondence(self):
        """Profiles from different inputs name the same instructions."""
        compiled = self.compiled()
        ref_refs = {
            ref
            for pair in compiled.profile_ref[("main", "loop")].pair_epochs
            for ref in pair
        }
        train_refs = {
            ref
            for pair in compiled.profile_train[("main", "loop")].pair_epochs
            for ref in pair
        }
        assert ref_refs == train_refs  # same program points in both

    def test_sync_binaries_have_channels(self):
        compiled = self.compiled()
        assert any(
            info.kind == "mem" for info in compiled.sync_ref.channels.values()
        )
        assert compiled.sync_ref.sync_loads

    def test_baseline_has_no_memory_channels(self):
        compiled = self.compiled()
        assert all(
            info.kind == "scalar" for info in compiled.baseline.channels.values()
        )

    def test_simulations_agree_with_interpreter(self):
        compiled = self.compiled()
        reference = run_module(compiled.seq).return_value
        seq = simulate_sequential(compiled.seq)
        assert seq.return_value == reference
        for attr in ("baseline", "sync_ref", "sync_train"):
            result = simulate_tls(getattr(compiled, attr))
            assert result.return_value == reference
            assert result.memory_checksum == seq.memory_checksum

    def test_synchronization_improves_region(self):
        compiled = self.compiled()
        seq = simulate_sequential(compiled.seq)
        baseline = simulate_tls(compiled.baseline)
        synced = simulate_tls(compiled.sync_ref)
        assert len(synced.regions[0].violations) < len(
            baseline.regions[0].violations
        )
        assert synced.region_cycles() < baseline.region_cycles()
        assert seq.region_cycles() > 0

    def test_scalar_reports_cover_loop(self):
        compiled = self.compiled()
        assert compiled.scalar_reports
        assert "i" in compiled.scalar_reports[0].communicating
        assert compiled.scheduling_reports[0].hoisted == ["i"]
