"""The memory-resident dependence passes: profiler, grouping, cloning,
synchronization insertion (paper Sections 2.2-2.3)."""

import pytest

from repro.compiler.memdep.cloning import CloningError, specialize_call_paths
from repro.compiler.scalar_sync import insert_all_scalar_sync
from repro.compiler.scheduling import schedule_all
from repro.compiler.memdep.graph import group_dependences
from repro.compiler.memdep.profiler import profile_dependences
from repro.compiler.memdep.sync_insertion import insert_memory_sync
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import Check, Load, Resume, Select, Signal, Store, Wait
from repro.ir.interpreter import run_module
from repro.ir.module import ParallelLoop
from repro.ir.verifier import verify_module
from repro.tlssim.sequential import simulate_tls


def freelist_module(iters=60, use_rate=2):
    """Miniature Figure 4: free_element / work -> use_element."""
    mb = ModuleBuilder()
    mb.global_var("head", 1, init=0)
    mb.global_var("arena", 16)
    mb.global_var("rare", 1, init=0)
    fb = mb.function("free_element", ["e"])
    fb.block("entry")
    old = fb.load("@head")          # ld in free_element
    fb.store("e", old, offset=0)
    fb.store("@head", "e")          # st in free_element
    fb.ret()
    fb = mb.function("use_element", [])
    fb.block("entry")
    head = fb.load("@head")          # ld in use_element
    empty = fb.binop("eq", head, 0)
    fb.condbr(empty, "none", "pop")
    fb.block("pop")
    nxt = fb.load(head, offset=0)
    fb.store("@head", nxt)           # st in use_element
    fb.ret(head)
    fb.block("none")
    fb.ret(0)
    fb = mb.function("work", ["w"])
    fb.block("entry")
    odd = fb.mod("w", use_rate)
    fb.condbr(odd, "use", "idle")
    fb.block("use")
    r = fb.call("use_element", [])
    fb.ret(r)
    fb.block("idle")
    fb.ret(0)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    slot = fb.mod("i", 8)
    off = fb.mul(slot, 2)
    element = fb.add("@arena", off)
    fb.call("free_element", [element], dest=False)
    fb.call("work", ["i"])
    # an infrequent dependence that must NOT be grouped
    rare_cond = fb.binop("eq", "i", 7)
    fb.condbr(rare_cond, "touch", "cont")
    fb.block("touch")
    r = fb.load("@rare")
    r2 = fb.add(r, 1)
    fb.store("@rare", r2)
    fb.jump("cont")
    fb.block("cont")
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", iters)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    final = fb.load("@head")
    fb.ret(final)
    module = mb.build()
    module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
    return module


@pytest.fixture
def profiled():
    module = freelist_module()
    profiles = profile_dependences(module)
    return module, profiles[("main", "loop")]


class TestProfiler:
    def test_epoch_count(self, profiled):
        _module, profile = profiled
        assert profile.total_epochs == 60

    def test_finds_frequent_pairs(self, profiled):
        _module, profile = profiled
        frequent = profile.frequent_pairs(0.05)
        assert frequent, "expected frequent head dependences"

    def test_context_sensitivity(self, profiled):
        """use_element's store is named with the work->use call stack."""
        _module, profile = profiled
        stacks = {len(store[1]) for store, _load in profile.frequent_pairs(0.05)}
        assert 1 in stacks  # free_element, called directly from the loop
        assert 2 in stacks  # use_element via work

    def test_infrequent_dependence_below_threshold(self, profiled):
        module, profile = profiled
        rare_loads = [
            i.iid
            for i in module.function("main").instructions()
            if isinstance(i, Load) and getattr(i.addr, "name", None) == "rare"
        ]
        frequent_load_iids = {load[0] for _s, load in profile.frequent_pairs(0.05)}
        assert not (set(rare_loads) & frequent_load_iids)

    def test_intra_epoch_dependences_excluded(self):
        """A store followed by a load in the same epoch is not recorded."""
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.store("@g", "i")
        fb.load("@g")  # sees its own epoch's store
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", 10)
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret(0)
        module = mb.build()
        module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
        profile = profile_dependences(module)[("main", "loop")]
        assert profile.pair_epochs == {}

    def test_distance_histogram(self, profiled):
        _module, profile = profiled
        assert sum(profile.distance_hist.values()) > 0
        fractions = profile.distance_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_loads_above(self, profiled):
        _module, profile = profiled
        assert profile.loads_above(0.05)
        assert profile.loads_above(0.05) >= profile.loads_above(0.25)


class TestGrouping:
    def test_head_accesses_form_one_group(self, profiled):
        _module, profile = profiled
        groups = group_dependences(profile, threshold=0.05)
        assert len(groups) == 1
        group = groups[0]
        assert len(group.loads) >= 1
        assert len(group.stores) >= 2  # free_element + use_element stores

    def test_high_threshold_may_prune(self, profiled):
        _module, profile = profiled
        low = group_dependences(profile, threshold=0.05)
        high = group_dependences(profile, threshold=0.9)
        low_members = {m for g in low for m in g.members}
        high_members = {m for g in high for m in g.members}
        assert high_members <= low_members

    def test_empty_profile_no_groups(self):
        from repro.compiler.memdep.profiler import LoopDependenceProfile

        profile = LoopDependenceProfile(function="f", header="h")
        assert group_dependences(profile) == []

    def test_deterministic_indices(self, profiled):
        _module, profile = profiled
        first = group_dependences(profile)
        second = group_dependences(profile)
        assert [g.member_iids() for g in first] == [g.member_iids() for g in second]
        assert [g.index for g in first] == list(range(len(first)))


class TestCloning:
    def test_chain_specialized(self, profiled):
        module, profile = profiled
        groups = group_dependences(profile)
        stacks = {stack for g in groups for (_iid, stack) in g.members if stack}
        before = set(module.functions)
        materialized = specialize_call_paths(
            module, module.parallel_loops[0], stacks
        )
        created = set(module.functions) - before
        # free_element clone + work clone + use_element clone
        assert len(created) == 3
        assert materialized[()] == "main"
        verify_module(module)

    def test_calls_redirected(self, profiled):
        module, profile = profiled
        groups = group_dependences(profile)
        stacks = {stack for g in groups for (_iid, stack) in g.members if stack}
        specialize_call_paths(module, module.parallel_loops[0], stacks)
        from repro.ir.instructions import Call

        loop_calls = {
            i.callee
            for i in module.function("main").instructions()
            if isinstance(i, Call)
        }
        assert any("$sync" in callee for callee in loop_calls)

    def test_behaviour_unchanged_by_cloning(self, profiled):
        module, profile = profiled
        reference = run_module(freelist_module()).return_value
        groups = group_dependences(profile)
        stacks = {stack for g in groups for (_iid, stack) in g.members if stack}
        specialize_call_paths(module, module.parallel_loops[0], stacks)
        assert run_module(module).return_value == reference

    def test_bogus_stack_rejected(self, profiled):
        module, _profile = profiled
        with pytest.raises(CloningError):
            specialize_call_paths(module, module.parallel_loops[0], [(424242,)])


class TestSyncInsertion:
    def transformed(self):
        module = freelist_module()
        profile = profile_dependences(module)[("main", "loop")]
        groups = group_dependences(profile)
        report = insert_memory_sync(module, module.parallel_loops[0], groups)
        verify_module(module)
        return module, report

    def test_report_counts(self):
        _module, report = self.transformed()
        assert report.groups == 1
        assert report.loads_synchronized >= 1
        assert report.signal_sites >= 1
        assert report.clones_created == 3
        assert report.channels == ["mem:main:loop:0"]

    def test_guard_structure_around_load(self):
        module, _report = self.transformed()
        guarded = None
        for name, function in module.functions.items():
            if "$sync" not in name and name != "main":
                continue
            for label, block in function.blocks.items():
                for index, instr in enumerate(block.instructions):
                    if isinstance(instr, Wait) and instr.kind == "addr":
                        guarded = block.instructions[index : index + 6]
                        break
        assert guarded is not None
        kinds = [type(i).__name__ for i in guarded]
        assert kinds == ["Wait", "Check", "Wait", "Load", "Select", "Resume"]

    def test_signals_follow_stores(self):
        module, _report = self.transformed()
        found_pair = False
        for function in module.functions.values():
            for block in function.blocks.values():
                for index, instr in enumerate(block.instructions):
                    if isinstance(instr, Signal) and instr.kind == "addr":
                        assert isinstance(block.instructions[index - 1], Store)
                        follow = block.instructions[index + 1]
                        assert isinstance(follow, Signal) and follow.kind == "value"
                        found_pair = True
        assert found_pair

    def test_sync_loads_marked(self):
        module, report = self.transformed()
        assert len(module.sync_loads) == report.loads_synchronized

    def test_behaviour_preserved(self):
        reference = run_module(freelist_module()).return_value
        module, _report = self.transformed()
        assert run_module(module).return_value == reference
        insert_all_scalar_sync(module)
        schedule_all(module)
        result = simulate_tls(module)
        assert result.return_value == reference

    def test_synchronization_reduces_failures(self):
        plain_module = freelist_module()
        insert_all_scalar_sync(plain_module)
        schedule_all(plain_module)
        plain = simulate_tls(plain_module)
        module, _ = self.transformed()
        insert_all_scalar_sync(module)
        schedule_all(module)
        synced = simulate_tls(module)
        assert len(synced.regions[0].violations) < len(plain.regions[0].violations)

    def test_engine_rejects_missing_scalar_channels(self):
        import pytest as _pytest
        from repro.tlssim.engine import EngineError

        with _pytest.raises(EngineError, match="forwarding channel"):
            simulate_tls(freelist_module())

    def test_no_groups_is_noop(self):
        module = freelist_module()
        before = module.instruction_count()
        report = insert_memory_sync(module, module.parallel_loops[0], [])
        assert report.groups == 0
        assert module.instruction_count() == before


class TestFastProfiler:
    """The interned-context fast path must match the reference hooks."""

    def test_equal_profiles_on_freelist(self):
        module = freelist_module()
        fast = profile_dependences(module)
        slow = profile_dependences(module, fast=False)
        assert fast == slow

    def test_equal_profiles_with_rare_contexts(self):
        module = freelist_module(iters=90, use_rate=3)
        fast = profile_dependences(module)
        slow = profile_dependences(module, fast=False)
        assert fast == slow

    def test_equal_profiles_on_real_workload(self):
        from repro.experiments.runner import bundle_for

        module = bundle_for("go").compiled.baseline
        assert profile_dependences(module) == profile_dependences(
            module, fast=False
        )

    def test_context_handle_hooks_need_fast_path(self):
        from repro.compiler.memdep.profiler import _FastDependenceHooks
        from repro.ir.interpreter import Interpreter, InterpreterError

        module = freelist_module()
        hooks = _FastDependenceHooks({})
        with pytest.raises(InterpreterError, match="fast path"):
            Interpreter(module, hooks=hooks, fast_path=False).run()
