"""Optimization passes: folding, DCE, CFG simplification, driver."""

from hypothesis import given, settings

from repro.compiler.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize_module,
    simplify_cfg,
)
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import BinOp, Const, Load, Store
from repro.ir.interpreter import run_module
from repro.ir.module import ParallelLoop
from tests.ir.test_properties import random_linear_program


def instr_count(module, name="main"):
    return module.function(name).instruction_count()


class TestConstantFolding:
    def build(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("main")
        fb.block("entry")
        a = fb.const(6)
        b = fb.const(7)
        c = fb.mul(a, b)          # foldable: 42
        d = fb.add(c, 0)          # foldable: 42
        e = fb.load("@g")
        f = fb.add(e, d)          # operand substitution only
        fb.store("@g", f)
        fb.ret(f)
        return mb.build()

    def test_folds_chains(self):
        module = self.build()
        fold_constants(module.function("main"))
        consts = [
            i for i in module.function("main").instructions()
            if isinstance(i, Const)
        ]
        assert any(i.value == 42 for i in consts)
        # no BinOp with two immediates survives
        for instr in module.function("main").instructions():
            if isinstance(instr, BinOp):
                assert instr.uses(), "all-immediate binop left unfolded"

    def test_behaviour_preserved(self):
        module = self.build()
        expected = run_module(self.build()).return_value
        fold_constants(module.function("main"))
        assert run_module(module).return_value == expected

    def test_iid_preserved_on_fold(self):
        module = self.build()
        before = [i.iid for i in module.function("main").instructions()]
        fold_constants(module.function("main"))
        after = [i.iid for i in module.function("main").instructions()]
        assert before == after

    def test_division_by_constant_zero_not_folded(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        z = fb.const(0)
        d = fb.div(5, z)
        fb.ret(d)
        module = mb.build()
        fold_constants(module.function("main"))
        assert any(
            isinstance(i, BinOp) and i.op == "div"
            for i in module.function("main").instructions()
        )

    def test_no_propagation_across_blocks(self):
        """Block-local env must reset (a loop may redefine the reg)."""
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="x")
        fb.jump("loop")
        fb.block("loop")
        fb.add("x", 1, dest="x")
        c = fb.binop("lt", "x", 3)
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret("x")
        module = mb.build()
        expected = run_module(module).return_value
        fold_constants(module.function("main"))
        assert run_module(module).return_value == expected == 3


class TestDCE:
    def test_removes_dead_chain(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        a = fb.const(1)
        b = fb.add(a, 2)   # dead
        fb.mul(b, 3)       # dead
        live = fb.const(9)
        fb.ret(live)
        module = mb.build()
        removed = eliminate_dead_code(module.function("main"))
        assert removed == 3
        assert run_module(module).return_value == 9

    def test_keeps_loads_and_stores(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1, init=4)
        fb = mb.function("main")
        fb.block("entry")
        fb.load("@g")       # dead value, but loads are kept
        fb.store("@g", 5)
        fb.ret(0)
        module = mb.build()
        eliminate_dead_code(module.function("main"))
        kinds = [type(i).__name__ for i in module.function("main").instructions()]
        assert "Load" in kinds and "Store" in kinds

    def test_keeps_unsafe_division(self):
        mb = ModuleBuilder()
        fb = mb.function("main", )
        fb.block("entry")
        x = fb.load("@g")
        fb.div(10, x)  # dead but may trap
        fb.ret(0)
        mb.global_var("g", 1, init=0)
        module = mb.build()
        eliminate_dead_code(module.function("main"))
        assert any(
            isinstance(i, BinOp) and i.op == "div"
            for i in module.function("main").instructions()
        )

    def test_keeps_calls(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("effect", [])
        fb.block("entry")
        fb.store("@g", 1)
        fb.ret(7)
        fb = mb.function("main")
        fb.block("entry")
        fb.call("effect", [])  # result dead, call kept
        r = fb.load("@g")
        fb.ret(r)
        module = mb.build()
        eliminate_dead_code(module.function("main"))
        assert run_module(module).return_value == 1


class TestSimplifyCFG:
    def build_messy(self):
        mb = ModuleBuilder()
        fb = mb.function("main", ["c"])
        fb.block("entry")
        fb.condbr("c", "hop", "side")
        fb.block("hop")          # trivial: only a jump
        fb.jump("tail")
        fb.block("side")
        fb.const(5, dest="x")
        fb.jump("tail")
        fb.block("tail")
        fb.const(1, dest="y")
        fb.jump("merge_me")
        fb.block("merge_me")     # single predecessor: mergeable
        fb.ret("y")
        fb.block("orphan")       # unreachable
        fb.ret(0)
        return mb.build()

    def test_simplifies_everything(self):
        module = self.build_messy()
        function = module.function("main")
        changed = simplify_cfg(function)
        assert changed > 0
        assert "orphan" not in function.blocks
        assert "merge_me" not in function.blocks  # merged into tail

    def test_pinned_labels_survive(self):
        module = self.build_messy()
        function = module.function("main")
        simplify_cfg(function, pinned_labels={"merge_me"})
        assert "merge_me" in function.blocks

    def test_entry_never_removed(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.jump("real")
        fb.block("real")
        fb.ret(3)
        module = mb.build()
        simplify_cfg(module.function("main"))
        assert module.function("main").entry_label == "entry"
        assert run_module(module).return_value == 3


class TestDriver:
    def test_region_headers_pinned(self):
        mb = ModuleBuilder()
        mb.global_var("out", 40 * 8)
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        dead = fb.mul(3, 4)
        fb.add(dead, 1)
        off = fb.mul("i", 8)
        addr = fb.add("@out", off)
        fb.store(addr, "i")
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", 10)
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret("i")
        module = mb.build()
        module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
        expected = run_module(module).return_value
        report = optimize_module(module)
        assert report.total_changes() > 0
        assert "loop" in module.function("main").blocks
        assert run_module(module).return_value == expected

    def test_shrinks_synchronized_workload(self):
        from repro.compiler.pipeline import compile_workload
        from tests.compiler.test_clone_pipeline import tiny_workload
        import copy

        compiled = compile_workload(
            "tiny-opt", tiny_workload, {"seed": 3}, {"seed": 44}
        )
        module = copy.deepcopy(compiled.sync_ref)
        expected = run_module(module).return_value
        before = module.instruction_count()
        optimize_module(module)
        after = module.instruction_count()
        assert after <= before
        assert run_module(module).return_value == expected

    @given(random_linear_program())
    @settings(max_examples=50, deadline=None)
    def test_semantics_preserved_on_random_programs(self, module):
        expected = run_module(module)
        optimize_module(module)
        actual = run_module(module)
        assert actual.return_value == expected.return_value
        # memory effects preserved too (the final store must survive)
        assert actual.memory.global_words("a") == expected.memory.global_words("a")

    def test_tls_simulation_unchanged_semantics(self):
        """Optimizing a transformed program must not change results."""
        from repro.compiler.pipeline import compile_workload
        from repro.tlssim.sequential import simulate_tls
        from tests.compiler.test_clone_pipeline import tiny_workload
        import copy

        compiled = compile_workload(
            "tiny-opt2", tiny_workload, {"seed": 5}, {"seed": 46}
        )
        module = copy.deepcopy(compiled.sync_ref)
        reference = simulate_tls(compiled.sync_ref).return_value
        optimize_module(module)
        assert simulate_tls(module).return_value == reference
