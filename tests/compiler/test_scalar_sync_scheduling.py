"""Scalar synchronization insertion and forwarding-path scheduling."""

from repro.compiler.scalar_sync import (
    find_communicating_scalars,
    insert_all_scalar_sync,
    insert_scalar_sync,
)
from repro.compiler.scheduling import schedule_all, schedule_loop
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import Signal, Wait
from repro.ir.interpreter import run_module
from repro.ir.module import ParallelLoop
from repro.tlssim.sequential import simulate_tls


def build_loop(conditional_def=False, invariant_use=True, iters=12):
    mb = ModuleBuilder()
    mb.global_var("out", iters * 8)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.const(0, dest="acc")
    fb.const(7, dest="base")  # loop invariant
    fb.jump("loop")
    fb.block("loop")
    if conditional_def:
        parity = fb.mod("i", 2)
        fb.condbr(parity, "bump", "skip")
        fb.block("bump")
        fb.add("acc", 1, dest="acc")
        fb.jump("cont")
        fb.block("skip")
        fb.jump("cont")
        fb.block("cont")
    else:
        fb.add("acc", "i", dest="acc")
    value = fb.add("acc", "base") if invariant_use else fb.move("acc")
    off = fb.mul("i", 8)
    addr = fb.add("@out", off)
    fb.store(addr, value)
    fb.add("i", 1, dest="i")
    cond = fb.binop("lt", "i", iters)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    fb.ret("acc")
    module = mb.build()
    module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
    return module


def count_instrs(module, cls, channel=None):
    found = []
    for instr in module.function("main").instructions():
        if isinstance(instr, cls):
            if channel is None or instr.channel == channel:
                found.append(instr)
    return found


class TestCommunicatingScalars:
    def test_loop_carried_identified(self):
        module = build_loop()
        scalars = find_communicating_scalars(module, module.parallel_loops[0])
        assert "i" in scalars and "acc" in scalars

    def test_invariant_excluded(self):
        module = build_loop()
        scalars = find_communicating_scalars(module, module.parallel_loops[0])
        assert "base" not in scalars

    def test_epoch_local_temp_excluded(self):
        module = build_loop()
        scalars = find_communicating_scalars(module, module.parallel_loops[0])
        assert all(not s.startswith("t") for s in scalars)


class TestInsertion:
    def test_waits_at_header_top(self):
        module = build_loop()
        report = insert_scalar_sync(module, module.parallel_loops[0])
        assert report.waits_inserted == 2
        header = module.function("main").block("loop")
        assert isinstance(header.instructions[0], Wait)
        assert isinstance(header.instructions[1], Wait)

    def test_signals_after_defs(self):
        module = build_loop()
        insert_scalar_sync(module, module.parallel_loops[0])
        signals = count_instrs(module, Signal)
        assert len(signals) == 2  # one per communicating scalar

    def test_conditional_def_signal_on_def_path(self):
        module = build_loop(conditional_def=True)
        insert_scalar_sync(module, module.parallel_loops[0])
        acc_channel = [
            c for c in module.channels if c.endswith(":acc")
        ][0]
        signals = count_instrs(module, Signal, channel=acc_channel)
        assert len(signals) == 1
        # the signal lives in the block with the definition
        bump = module.function("main").block("bump")
        assert any(isinstance(i, Signal) and i.channel == acc_channel for i in bump)

    def test_channels_registered(self):
        module = build_loop()
        insert_scalar_sync(module, module.parallel_loops[0])
        loop = module.parallel_loops[0]
        assert len(loop.scalar_channels) == 2
        for channel in loop.scalar_channels:
            assert module.channels[channel].kind == "scalar"

    def test_sequential_behaviour_unchanged(self):
        module = build_loop(conditional_def=True)
        reference = run_module(build_loop(conditional_def=True)).return_value
        insert_all_scalar_sync(module)
        assert run_module(module).return_value == reference

    def test_tls_execution_correct(self):
        module = build_loop()
        reference = run_module(build_loop()).return_value
        insert_all_scalar_sync(module)
        result = simulate_tls(module)
        assert result.return_value == reference


class TestScheduling:
    def test_induction_variable_hoisted(self):
        module = build_loop()
        insert_all_scalar_sync(module)
        reports = schedule_all(module)
        assert reports[0].hoisted == ["i"]
        header = module.function("main").block("loop")
        # after the two waits: the hoisted add + signal
        kinds = [type(i).__name__ for i in header.instructions[:4]]
        assert kinds[:2] == ["Wait", "Wait"]
        assert "Signal" in kinds

    def test_accumulator_with_variable_step_not_hoisted(self):
        module = build_loop()  # acc += i: step not a constant
        insert_all_scalar_sync(module)
        reports = schedule_all(module)
        assert "acc" not in reports[0].hoisted

    def test_conditional_def_not_hoisted(self):
        module = build_loop(conditional_def=True)
        insert_all_scalar_sync(module)
        report = schedule_loop(module, module.parallel_loops[0])
        assert "acc" not in report.hoisted
        assert "i" in report.hoisted

    def test_behaviour_preserved_after_scheduling(self):
        reference = run_module(build_loop(conditional_def=True)).return_value
        module = build_loop(conditional_def=True)
        insert_all_scalar_sync(module)
        schedule_all(module)
        assert run_module(module).return_value == reference
        assert simulate_tls(module).return_value == reference

    def test_scheduling_shrinks_region_time(self):
        def prepared(schedule):
            module = build_loop(iters=40)
            insert_all_scalar_sync(module)
            if schedule:
                schedule_all(module)
            return simulate_tls(module).region_cycles()

        assert prepared(schedule=True) <= prepared(schedule=False)
