"""Loop selection heuristics and loop unrolling."""

import pytest

from repro.compiler.loop_selection import (
    MIN_COVERAGE,
    MIN_EPOCHS_PER_INSTANCE,
    MIN_INSNS_PER_EPOCH,
    LoopStats,
    find_candidate_loops,
    profile_loop,
    select_loops,
)
from repro.compiler.unroll import choose_unroll_factor, unroll_loop
from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import Interpreter, run_module
from repro.ir.module import ParallelLoop


def two_loop_module(big_iters=50, small_iters=60):
    """A hot fat loop and a tiny (sub-threshold) loop."""
    mb = ModuleBuilder()
    mb.global_var("out", 1)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("hot")
    fb.block("hot")
    acc = fb.const(1)
    for k in range(30):
        acc = fb.binop(("add", "xor", "mul", "sub")[k % 4], acc, k + 1)
    cur = fb.load("@out")
    merged = fb.binop("xor", cur, acc)
    fb.store("@out", merged)
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", big_iters)
    fb.condbr(c, "hot", "mid")
    fb.block("mid")
    fb.const(0, dest="j")
    fb.jump("tiny")
    fb.block("tiny")
    fb.add("j", 1, dest="j")
    c2 = fb.binop("lt", "j", small_iters)
    fb.condbr(c2, "tiny", "done")
    fb.block("done")
    r = fb.load("@out")
    fb.ret(r)
    return mb.build()


class TestCandidates:
    def test_both_loops_found(self):
        candidates = find_candidate_loops(two_loop_module())
        assert ("main", "hot") in candidates
        assert ("main", "tiny") in candidates

    def test_loop_with_alloc_excluded(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.alloc(2)
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", 3)
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret(0)
        assert find_candidate_loops(mb.build()) == []

    def test_recursive_callee_excluded(self):
        mb = ModuleBuilder()
        fb = mb.function("rec", [])
        fb.block("entry")
        fb.call("rec", [])
        fb.ret(0)
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.call("rec", [])
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", 3)
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret(0)
        assert find_candidate_loops(mb.build()) == []


class TestProfiling:
    def test_coverage_metrics(self):
        stats = profile_loop(two_loop_module(), "main", "hot")
        assert stats.instances == 1
        assert stats.epochs == 50
        assert stats.coverage > 0.5
        assert stats.insns_per_epoch > 30

    def test_tiny_loop_fails_epoch_size(self):
        stats = profile_loop(two_loop_module(), "main", "tiny")
        assert stats.insns_per_epoch < MIN_INSNS_PER_EPOCH
        assert not stats.qualifies()

    def test_qualifies_thresholds(self):
        stats = LoopStats(
            function="f", header="h",
            total_steps=1000, region_steps=300, instances=2, epochs=10,
        )
        assert stats.qualifies()
        assert not LoopStats(
            function="f", header="h",
            total_steps=100000, region_steps=10, instances=1, epochs=1,
        ).qualifies()

    def test_heuristic_constants_match_paper(self):
        assert MIN_COVERAGE == 0.001
        assert MIN_EPOCHS_PER_INSTANCE == 1.5
        assert MIN_INSNS_PER_EPOCH == 15.0


class TestSelection:
    def test_hot_selected_tiny_rejected(self):
        selected, _stats = select_loops(two_loop_module())
        keys = [(l.function, l.header) for l in selected]
        assert ("main", "hot") in keys
        assert ("main", "tiny") not in keys

    def test_nested_overlap_resolved(self):
        """Of two nested qualifying loops, only one is selected."""
        mb = ModuleBuilder()
        mb.global_var("out", 1)
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("outer")
        fb.block("outer")
        fb.const(0, dest="j")
        fb.jump("inner")
        fb.block("inner")
        acc = fb.const(1)
        for k in range(20):
            acc = fb.binop("add", acc, k)
        fb.store("@out", acc)
        fb.add("j", 1, dest="j")
        cj = fb.binop("lt", "j", 10)
        fb.condbr(cj, "inner", "latch")
        fb.block("latch")
        fb.add("i", 1, dest="i")
        ci = fb.binop("lt", "i", 10)
        fb.condbr(ci, "outer", "done")
        fb.block("done")
        fb.ret(0)
        selected, _ = select_loops(mb.build())
        assert len(selected) == 1


class TestUnroll:
    def unrolled(self, factor, iters=10):
        module = two_loop_module(big_iters=iters)
        loop = ParallelLoop(function="main", header="hot")
        module.parallel_loops.append(loop)
        report = unroll_loop(module, loop, factor)
        return module, report

    def test_factor_one_is_noop(self):
        module, report = self.unrolled(1)
        assert report.factor == 1
        assert "hot$u1" not in module.function("main").blocks

    def test_blocks_duplicated(self):
        module, _ = self.unrolled(4)
        blocks = module.function("main").blocks
        assert "hot$u1" in blocks and "hot$u3" in blocks
        assert "hot$u4" not in blocks

    @pytest.mark.parametrize("factor,iters", [(2, 10), (4, 10), (2, 7), (4, 9)])
    def test_behaviour_preserved(self, factor, iters):
        reference = run_module(two_loop_module(big_iters=iters)).return_value
        module, _ = self.unrolled(factor, iters=iters)
        assert run_module(module).return_value == reference

    def test_epoch_count_divided(self):
        module, _ = self.unrolled(2, iters=10)
        result = Interpreter(module).run()
        assert result.epochs_per_region[("main", "hot")] == 5

    def test_non_divisible_trip_count(self):
        module, _ = self.unrolled(4, iters=10)
        result = Interpreter(module).run()
        # 2 full epochs of 4 iterations + exit from a partial pass
        assert result.epochs_per_region[("main", "hot")] == 3

    def test_annotation_updated(self):
        _module, report = self.unrolled(4)
        assert report.loop.unroll_factor == 4

    def test_choose_unroll_factor(self):
        assert choose_unroll_factor(100.0) == 1
        assert choose_unroll_factor(30.0) == 2
        assert choose_unroll_factor(13.0) == 4
        assert choose_unroll_factor(3.0) == 8  # capped
        assert choose_unroll_factor(0.0) == 1
