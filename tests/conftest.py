"""Suite-wide pytest configuration.

The ``stability`` marker gates the soak tier (``tests/stability/``):
those tests run repeated warm submits through a live serve daemon and
take minutes, so the tier-1 suite skips them unless ``--run-stability``
is passed (the nightly workflow does).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-stability",
        action="store_true",
        default=False,
        help="run soak tests marked @pytest.mark.stability",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-stability"):
        return
    skip = pytest.mark.skip(reason="needs --run-stability")
    for item in items:
        if "stability" in item.keywords:
            item.add_marker(skip)
