"""Isolation for experiment tests.

CLI commands enable the persistent result cache (and the compiled-
artifact store) by default; point their default root into the test's
tmp directory so no test ever reads stale entries from (or writes
into) the repository's ``.repro_cache/``, and always leave the
process-wide stores disabled afterwards.
"""

import pytest

from repro.experiments import artifacts as artifacts_mod
from repro.experiments import cache as cache_mod
from repro.experiments import metrics as metrics_mod
from repro.experiments import runner


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    yield
    cache_mod.configure(False)
    artifacts_mod.configure(False)
    artifacts_mod.reset_counters()
    metrics_mod.reset()


@pytest.fixture
def fresh_bundles():
    """Cold bundle memos for the test, restored afterwards.

    Saving the memo dict keeps other test files' compiled bundles warm
    (the suite leans on that sharing for speed).
    """
    saved = dict(runner._BUNDLES)
    runner._BUNDLES.clear()
    yield
    runner._BUNDLES.clear()
    runner._BUNDLES.update(saved)
