"""The compiled-artifact store: round trips, keys, and warm starts.

The hard acceptance criterion is byte-identity: a deserialized
:class:`CompiledWorkload` must be indistinguishable from a fresh
compile — same serialized state, same simulation results, same typed
event stream — across the whole suite.  Corruption and version drift
must degrade to recompilation, never to a crash or a wrong result.
"""

import json
import os

import pytest

from repro.experiments import artifacts as artifacts_mod
from repro.experiments import cache as cache_mod
from repro.experiments import metrics as metrics_mod
from repro.experiments import runner
from repro.experiments.runner import bundle_for, config_for, plan_bar_jobs
from repro.ir.serialize import SerializeError, module_from_state, module_to_state
from repro.obs.bus import CollectorSink, EventBus
from repro.tlssim.engine import TLSEngine
from repro.tlssim.oracle import collect_oracle
from repro.workloads import all_workloads, get_workload

WORKLOADS = tuple(w.name for w in all_workloads())


def _store(tmp_path) -> artifacts_mod.ArtifactStore:
    return artifacts_mod.ArtifactStore(str(tmp_path / "store"))


def _stream(program, config, oracle=None, parallel=True):
    bus = EventBus()
    collector = bus.attach(CollectorSink())
    result = TLSEngine(
        program, config=config, oracle=oracle, parallel=parallel, obs=bus
    ).run()
    return [e.key() for e in collector.events], result


class TestModuleSerialization:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_state_roundtrip_every_binary(self, name):
        compiled = bundle_for(name).compiled
        for attr in ("seq", "baseline", "sync_ref", "sync_train"):
            state = module_to_state(getattr(compiled, attr))
            json.dumps(state)  # must be JSON-serializable
            assert module_to_state(module_from_state(state)) == state

    def test_iids_preserved_exactly(self):
        module = bundle_for("go").compiled.sync_ref
        restored = module_from_state(module_to_state(module))
        for fn in module.functions.values():
            twin = restored.functions[fn.name]
            for label, block in fn.blocks.items():
                for a, b in zip(block.instructions, twin.blocks[label].instructions):
                    assert (a.iid, a.origin_iid) == (b.iid, b.origin_iid)

    def test_bad_state_raises_serialize_error(self):
        with pytest.raises(SerializeError):
            module_from_state({"functions": "nope"})


class TestArtifactKey:
    def test_stable_and_sensitive(self):
        base = artifacts_mod.artifact_key("compiled", "go", 0.05, 1, 2)
        assert artifacts_mod.artifact_key("compiled", "go", 0.05, 1, 2) == base
        assert artifacts_mod.artifact_key("oracle", "go", 0.05, 1, 2) != base
        assert artifacts_mod.artifact_key("compiled", "mcf", 0.05, 1, 2) != base
        assert artifacts_mod.artifact_key("compiled", "go", 0.15, 1, 2) != base
        assert artifacts_mod.artifact_key("compiled", "go", 0.05, 9, 2) != base
        assert artifacts_mod.artifact_key("compiled", "go", 0.05, 1, 9) != base

    def test_includes_pipeline_fingerprint(self, monkeypatch):
        before = artifacts_mod.artifact_key("compiled", "go", 0.05, 1, 2)
        monkeypatch.setattr(
            artifacts_mod, "pipeline_fingerprint", lambda: "deadbeef"
        )
        assert artifacts_mod.artifact_key("compiled", "go", 0.05, 1, 2) != before


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_compiled_state_and_event_stream_identical(self, name, tmp_path):
        """Loaded artifacts simulate byte-identically to fresh compiles."""
        workload = get_workload(name)
        compiled = bundle_for(name).compiled
        store = _store(tmp_path)
        store.save_compiled(workload, 0.05, compiled)
        loaded = store.load_compiled(workload, 0.05)
        assert loaded is not None
        assert artifacts_mod.compiled_to_state(loaded) == (
            artifacts_mod.compiled_to_state(compiled)
        )
        config = config_for("C").with_mode(fast_path=True)
        fresh_stream, fresh_result = _stream(compiled.sync_ref, config)
        loaded_stream, loaded_result = _stream(loaded.sync_ref, config)
        assert loaded_result.to_state() == fresh_result.to_state()
        assert loaded_stream == fresh_stream

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_oracle_state_roundtrip(self, name, tmp_path):
        workload = get_workload(name)
        oracle = collect_oracle(bundle_for(name).compiled.baseline)
        store = _store(tmp_path)
        store.save_oracle(workload, 0.05, "baseline", oracle)
        loaded = store.load_oracle(workload, 0.05, "baseline")
        assert loaded is not None
        assert artifacts_mod.oracle_to_state(loaded) == (
            artifacts_mod.oracle_to_state(oracle)
        )

    def test_oracle_bar_identical_through_engine(self, tmp_path):
        """A stored oracle drives the O bar exactly like a fresh one."""
        workload = get_workload("go")
        compiled = bundle_for("go").compiled
        oracle = collect_oracle(compiled.baseline)
        store = _store(tmp_path)
        store.save_oracle(workload, 0.05, "baseline", oracle)
        loaded = store.load_oracle(workload, 0.05, "baseline")
        config = config_for("O").with_mode(fast_path=True)
        fresh_stream, fresh_result = _stream(compiled.baseline, config, oracle)
        loaded_stream, loaded_result = _stream(compiled.baseline, config, loaded)
        assert loaded_result.to_state() == fresh_result.to_state()
        assert loaded_stream == fresh_stream


class TestCorruptionTolerance:
    def _warm_store(self, tmp_path):
        store = _store(tmp_path)
        workload = get_workload("go")
        compiled = bundle_for("go").compiled
        store.save_compiled(workload, 0.05, compiled)
        path = store._path(store.compiled_key(workload, 0.05), "compiled")
        return store, workload, compiled, path

    def test_truncated_entry_falls_back(self, tmp_path):
        store, workload, compiled, path = self._warm_store(tmp_path)
        path.write_bytes(path.read_bytes()[:100])
        artifacts_mod.reset_counters()
        assert store.load_compiled(workload, 0.05) is None
        assert not path.exists()  # dropped, not retried forever
        stats = artifacts_mod.counters()
        assert stats["corrupt"] == 1 and stats["misses"] == 1

    def test_garbage_payload_falls_back(self, tmp_path):
        store, workload, compiled, path = self._warm_store(tmp_path)
        entry = json.loads(path.read_text())
        entry["payload"] = {"name": "go", "seq": ["not", "a", "module"]}
        path.write_text(json.dumps(entry))
        artifacts_mod.reset_counters()
        assert store.load_compiled(workload, 0.05) is None
        assert not path.exists()
        assert artifacts_mod.counters()["corrupt"] == 1

    def test_version_mismatch_is_miss_but_kept(self, tmp_path):
        store, workload, compiled, path = self._warm_store(tmp_path)
        entry = json.loads(path.read_text())
        entry["pipeline"] = "deadbeef"
        path.write_text(json.dumps(entry))
        artifacts_mod.reset_counters()
        assert store.load_compiled(workload, 0.05) is None
        assert path.exists()  # foreign artifact left in place
        stats = artifacts_mod.counters()
        assert stats["version_mismatch"] == 1 and stats["misses"] == 1

    def test_corrupt_store_recompiles_identically(self, tmp_path, fresh_bundles):
        artifacts_mod.configure(True, str(tmp_path / "store"))
        reference = bundle_for("go").compiled  # miss: compiles and saves
        store = artifacts_mod.active_store()
        for path in store.root.rglob("*.json"):
            path.write_text("truncated garbag")
        runner.clear_cache()
        recompiled = bundle_for("go").compiled
        assert artifacts_mod.compiled_to_state(recompiled) == (
            artifacts_mod.compiled_to_state(reference)
        )


class TestWarmStartProvenance:
    def test_store_hit_records_cache_source(self, tmp_path, fresh_bundles):
        artifacts_mod.configure(True, str(tmp_path / "store"))
        bundle_for("go").compiled
        runner.clear_cache()
        metrics_mod.reset()
        bundle_for("go").compiled
        [job] = [j for j in metrics_mod.current().jobs if j.kind == "compile"]
        assert job.source == metrics_mod.SOURCE_CACHE
        assert job.wall_s > 0.0

    def test_cold_compile_records_computed_source(self, tmp_path, fresh_bundles):
        artifacts_mod.configure(True, str(tmp_path / "store"))
        metrics_mod.reset()
        bundle_for("go").compiled
        [job] = [j for j in metrics_mod.current().jobs if j.kind == "compile"]
        assert job.source == metrics_mod.SOURCE_COMPUTED

    def test_oracle_store_hit_records_cache_source(self, tmp_path, fresh_bundles):
        artifacts_mod.configure(True, str(tmp_path / "store"))
        bundle_for("go").oracle_for("baseline")
        runner.clear_cache()
        metrics_mod.reset()
        bundle_for("go").oracle_for("baseline")
        oracle_jobs = [
            j for j in metrics_mod.current().jobs if j.kind == "oracle"
        ]
        assert [j.source for j in oracle_jobs] == [metrics_mod.SOURCE_CACHE]


class TestCrossProcessWarmStart:
    def test_prewarmed_store_serves_fresh_workers(self, tmp_path, fresh_bundles):
        """A store warmed by one process feeds pool workers compile-free."""
        artifacts_mod.configure(True, str(tmp_path / "store"))
        cache_mod.configure(False)  # force the simulations to really run
        for name in ("go", "mcf"):
            bundle_for(name).compiled  # warm the store in this process
        runner.clear_cache()
        metrics_mod.reset(workers=2)
        artifacts_mod.reset_counters()  # drop the warm-up's miss counts
        runner.execute_plan(
            plan_bar_jobs(["go", "mcf"], ["C"], include_seq=False), jobs=2
        )
        compile_jobs = [
            j for j in metrics_mod.current().jobs if j.kind == "compile"
        ]
        assert {j.workload for j in compile_jobs} == {"go", "mcf"}
        for job in compile_jobs:
            assert job.source == metrics_mod.SOURCE_CACHE
            assert job.worker != os.getpid()  # loaded inside a pool worker
        # worker-side store hits are folded back into the parent's counters
        counts = artifacts_mod.counters()
        assert counts["hits"] >= len(compile_jobs)
        assert counts["misses"] == 0


class TestStoreManagement:
    def test_info_and_clear(self, tmp_path):
        store = _store(tmp_path)
        workload = get_workload("go")
        compiled = bundle_for("go").compiled
        store.save_compiled(workload, 0.05, compiled)
        store.save_oracle(
            workload, 0.05, "baseline", collect_oracle(compiled.baseline)
        )
        info = store.info()
        assert info["compiled"] == 1 and info["oracles"] == 1
        assert info["entries"] == 2 and info["bytes"] > 0
        assert store.clear() == 2
        assert store.info()["entries"] == 0

    def test_info_counts_lowered_artifacts(self, tmp_path):
        store = _store(tmp_path)
        workload = get_workload("go")
        compiled = bundle_for("go").compiled
        store.save_compiled(workload, 0.05, compiled)
        module = compiled.baseline
        store.save_lowered(module, (4.0, 1.0), {"regions": []})
        store.save_lowered(module, (8.0, 1.0), {"regions": []})
        info = store.info()
        assert info["lowered"] == 2
        assert info["entries"] == 3  # compiled + 2 lowered tables

    def test_clear_only_lowered(self, tmp_path):
        """`repro cache clear --only lowered` keeps compiled binaries."""
        store = _store(tmp_path)
        workload = get_workload("go")
        compiled = bundle_for("go").compiled
        store.save_compiled(workload, 0.05, compiled)
        store.save_lowered(compiled.baseline, (4.0, 1.0), {"regions": []})
        removed = store.clear(kinds=(artifacts_mod.KIND_LOWERED,))
        assert removed == 1
        info = store.info()
        assert info["lowered"] == 0 and info["compiled"] == 1

    def test_result_cache_ignores_artifacts(self, tmp_path):
        """Result-cache info/clear must not touch the sibling store."""
        root = str(tmp_path / "shared")
        cache = cache_mod.ResultCache(root)
        store = artifacts_mod.ArtifactStore(root)
        cache.put("ab" + "0" * 62, {"x": 1})
        store.save_compiled(get_workload("go"), 0.05, bundle_for("go").compiled)
        assert cache.info()["entries"] == 1
        assert cache.clear() == 1
        assert store.info()["entries"] == 1  # artifact survived
