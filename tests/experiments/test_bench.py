"""``repro bench``: well-formed BENCH_engine.json and sane numbers."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.bench import (
    SCHEMA_FIELDS,
    compare_bench,
    format_compare,
    summarize,
)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.output == "BENCH_engine.json"
        assert args.schemes == ["U", "C"] and args.repeat == 3

    def test_scheme_list_parsing(self):
        args = build_parser().parse_args(["bench", "--schemes", "u, seq"])
        assert args.schemes == ["U", "SEQ"]

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--schemes", "U,Z"])


class TestBenchCommand:
    def test_smoke_writes_well_formed_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_engine.json"
        assert main(
            [
                "bench",
                "--workloads", "go",
                "--schemes", "U",
                "--repeat", "1",
                "-o", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "engine-throughput"
        assert payload["schema"] == list(SCHEMA_FIELDS)
        # cold + warm fast + warm fast-vector + warm slow records
        assert len(payload["results"]) == 4
        for record in payload["results"]:
            assert set(SCHEMA_FIELDS) <= set(record)
            assert record["workload"] == "go" and record["scheme"] == "U"
            assert record["wall_seconds"] > 0
            assert record["instructions"] > 0
            assert record["instrs_per_sec"] > 0
            assert record["sim_cycles"] > 0
        modes = {(r["mode"], r["phase"]) for r in payload["results"]}
        assert modes == {
            ("fast", "cold"), ("fast", "warm"),
            ("fast-vector", "warm"), ("slow", "warm"),
        }
        [cell] = payload["speedups"]
        assert cell["speedup"] > 0
        assert cell["vector_instrs_per_sec"] > 0
        assert 0.0 <= cell["fused_fraction"] <= 1.0
        assert payload["largest_workload"] == cell
        console = capsys.readouterr().out
        assert "speedup" in console and str(out) in console

    def test_pipeline_cells(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(
            [
                "bench",
                "--workloads", "go",
                "--schemes", "U",
                "--repeat", "1",
                "--pipeline",
                "-o", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        pipeline = [
            r for r in payload["results"] if r["phase"] == "pipeline"
        ]
        # three cells (compile/profile/oracle), each fast + slow
        assert len(pipeline) == 6
        cells = {(r["scheme"], r["mode"]) for r in pipeline}
        assert cells == {
            (scheme, mode)
            for scheme in ("compile", "profile", "oracle")
            for mode in ("fast", "slow")
        }
        for record in pipeline:
            assert set(SCHEMA_FIELDS) <= set(record)
            assert record["sim_cycles"] == 0.0
            assert record["wall_seconds"] > 0
            assert record["instrs_per_sec"] > 0
        by_scheme = {
            s["scheme"]: s for s in payload["speedups"]
            if s.get("phase") == "pipeline"
        }
        assert set(by_scheme) == {"compile", "profile", "oracle"}
        for cell in by_scheme.values():
            assert cell["speedup"] > 0
        # the headline number stays an engine cell
        assert payload["largest_workload"]["scheme"] == "U"
        assert "compile" in capsys.readouterr().out

    def test_profile_dump(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        stats = tmp_path / "bench.pstats"
        assert main(
            [
                "bench",
                "--workloads", "go",
                "--schemes", "SEQ",
                "--repeat", "1",
                "-o", str(out),
                "--profile", str(stats),
            ]
        ) == 0
        assert stats.exists() and stats.stat().st_size > 0
        assert "cumulative" in capsys.readouterr().out


class TestSummarize:
    def test_largest_picks_most_instructions(self):
        def cell(workload, mode, instrs, ips):
            return {
                "workload": workload, "scheme": "U", "mode": mode,
                "phase": "warm", "sim_cycles": 1.0, "instructions": instrs,
                "wall_seconds": instrs / ips, "instrs_per_sec": ips,
            }

        records = [
            cell("small", "fast", 10, 400.0),
            cell("small", "slow", 10, 100.0),
            cell("big", "fast", 1000, 300.0),
            cell("big", "slow", 1000, 100.0),
        ]
        summary = summarize(records)
        assert len(summary["speedups"]) == 2
        assert summary["largest_workload"]["workload"] == "big"
        assert summary["largest_workload"]["speedup"] == pytest.approx(3.0)

    def test_cold_records_ignored(self):
        summary = summarize(
            [
                {
                    "workload": "w", "scheme": "U", "mode": "fast",
                    "phase": "cold", "sim_cycles": 1.0, "instructions": 10,
                    "wall_seconds": 1.0, "instrs_per_sec": 10.0,
                }
            ]
        )
        assert summary["speedups"] == []
        assert summary["largest_workload"] is None


def _speedup_cell(workload, scheme, fast_ips):
    return {
        "workload": workload,
        "scheme": scheme,
        "instructions": 1000,
        "fast_instrs_per_sec": fast_ips,
        "slow_instrs_per_sec": fast_ips / 3.0,
        "speedup": 3.0,
    }


class TestCompare:
    def test_all_within_tolerance(self):
        baseline = {"speedups": [_speedup_cell("go", "U", 1000.0)]}
        current = {"speedups": [_speedup_cell("go", "U", 950.0)]}
        comparison = compare_bench(current, baseline, tolerance=0.2)
        assert comparison["regressions"] == 0
        [cell] = comparison["cells"]
        assert cell["status"] == "ok"
        assert cell["ratio"] == pytest.approx(0.95)

    def test_regression_flagged(self):
        baseline = {"speedups": [_speedup_cell("go", "U", 1000.0)]}
        current = {"speedups": [_speedup_cell("go", "U", 700.0)]}
        comparison = compare_bench(current, baseline, tolerance=0.2)
        assert comparison["regressions"] == 1
        assert comparison["cells"][0]["status"] == "regressed"

    def test_boundary_exactly_at_tolerance_passes(self):
        baseline = {"speedups": [_speedup_cell("go", "U", 1000.0)]}
        current = {"speedups": [_speedup_cell("go", "U", 800.0)]}
        comparison = compare_bench(current, baseline, tolerance=0.2)
        assert comparison["regressions"] == 0

    def test_subset_run_skips_baseline_cells(self):
        baseline = {
            "speedups": [
                _speedup_cell("go", "U", 1000.0),
                _speedup_cell("mcf", "C", 500.0),
            ]
        }
        current = {"speedups": [_speedup_cell("go", "U", 1000.0)]}
        comparison = compare_bench(current, baseline, tolerance=0.2)
        assert comparison["regressions"] == 0
        statuses = {
            (c["workload"], c["scheme"]): c["status"]
            for c in comparison["cells"]
        }
        assert statuses == {("go", "U"): "ok", ("mcf", "C"): "skipped"}

    def test_vector_regression_flagged(self):
        # The fast path holding steady must not mask a vector-backend
        # regression: both throughput columns ride the gate.
        base = _speedup_cell("go", "U", 1000.0)
        base["vector_instrs_per_sec"] = 2000.0
        cur = _speedup_cell("go", "U", 1000.0)
        cur["vector_instrs_per_sec"] = 1000.0
        comparison = compare_bench(
            {"speedups": [cur]}, {"speedups": [base]}, tolerance=0.2
        )
        assert comparison["regressions"] == 1
        [cell] = comparison["cells"]
        assert cell["status"] == "regressed"
        assert cell["vector_ratio"] == pytest.approx(0.5)

    def test_new_cell_reported_not_failed(self):
        baseline = {"speedups": []}
        current = {"speedups": [_speedup_cell("go", "U", 1000.0)]}
        comparison = compare_bench(current, baseline)
        assert comparison["regressions"] == 0
        assert comparison["cells"][0]["status"] == "new"

    def test_format_compare_report(self):
        baseline = {
            "speedups": [
                _speedup_cell("go", "U", 1000.0),
                _speedup_cell("mcf", "C", 500.0),
            ]
        }
        current = {
            "speedups": [
                _speedup_cell("go", "U", 700.0),
            ]
        }
        report = format_compare(compare_bench(current, baseline))
        assert "regressed" in report
        assert "1 regression(s)" in report
        assert "not benchmarked" in report

    def test_cli_compare_gate(self, tmp_path):
        """`repro bench --compare` exits 1 only on real regressions."""
        out = tmp_path / "bench.json"
        assert main(
            ["bench", "--workloads", "go", "--schemes", "U",
             "--repeat", "1", "-o", str(out)]
        ) == 0
        payload = json.loads(out.read_text())

        relaxed = dict(payload)
        baseline_ok = tmp_path / "baseline_ok.json"
        baseline_ok.write_text(json.dumps(relaxed))
        assert main(
            ["bench", "--workloads", "go", "--schemes", "U", "--repeat", "1",
             "-o", str(out), "--compare", str(baseline_ok),
             "--compare-tolerance", "0.9"]
        ) == 0

        inflated = json.loads(out.read_text())
        for cell in inflated["speedups"]:
            cell["fast_instrs_per_sec"] *= 100.0
        baseline_bad = tmp_path / "baseline_bad.json"
        baseline_bad.write_text(json.dumps(inflated))
        assert main(
            ["bench", "--workloads", "go", "--schemes", "U", "--repeat", "1",
             "-o", str(out), "--compare", str(baseline_bad)]
        ) == 1
