"""The persistent result cache: keys, storage, and bundle integration."""

import json

from repro.experiments import cache as cache_mod
from repro.experiments import metrics as metrics_mod
from repro.experiments import runner
from repro.tlssim.config import SimConfig
from repro.tlssim.stats import SimResult, ViolationRecord


class TestResultKey:
    def test_stable_for_same_inputs(self):
        state = cache_mod.config_to_state(SimConfig())
        a = cache_mod.result_key("go", 0.05, "bar", "C", "sync_ref", state)
        b = cache_mod.result_key("go", 0.05, "bar", "C", "sync_ref", state)
        assert a == b

    def test_sensitive_to_every_component(self):
        state = cache_mod.config_to_state(SimConfig())
        base = cache_mod.result_key("go", 0.05, "bar", "C", "sync_ref", state)
        assert cache_mod.result_key("mcf", 0.05, "bar", "C", "sync_ref", state) != base
        assert cache_mod.result_key("go", 0.15, "bar", "C", "sync_ref", state) != base
        assert cache_mod.result_key("go", 0.05, "bar", "U", "sync_ref", state) != base
        assert cache_mod.result_key("go", 0.05, "bar", "C", "baseline", state) != base

    def test_sensitive_to_sim_config_fields(self):
        """Any SimConfig change must produce a different cache key."""
        base_state = cache_mod.config_to_state(SimConfig())
        changed_state = cache_mod.config_to_state(SimConfig(num_cores=8))
        assert base_state != changed_state
        base = cache_mod.result_key("go", 0.05, "bar", "C", "sync_ref", base_state)
        changed = cache_mod.result_key(
            "go", 0.05, "bar", "C", "sync_ref", changed_state
        )
        assert base != changed

    def test_includes_code_fingerprint(self, monkeypatch):
        state = cache_mod.config_to_state(SimConfig())
        before = cache_mod.result_key("go", 0.05, "bar", "C", "sync_ref", state)
        monkeypatch.setattr(cache_mod, "code_fingerprint", lambda: "deadbeef")
        after = cache_mod.result_key("go", 0.05, "bar", "C", "sync_ref", state)
        assert before != after


class TestConfigState:
    def test_roundtrip(self):
        config = SimConfig().with_mode(
            hw_sync=True, oracle_mode="set", oracle_set=frozenset({3, 7})
        )
        state = cache_mod.config_to_state(config)
        json.dumps(state)  # must be JSON-serializable
        assert cache_mod.config_from_state(state) == config


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = cache_mod.ResultCache(str(tmp_path / "c"))
        cache.put("ab" + "0" * 62, {"x": 1})
        assert cache.get("ab" + "0" * 62) == {"x": 1}

    def test_missing_entry_is_none(self, tmp_path):
        cache = cache_mod.ResultCache(str(tmp_path / "c"))
        assert cache.get("ff" + "0" * 62) is None

    def test_corrupt_entry_dropped(self, tmp_path):
        cache = cache_mod.ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        cache.put(key, {"x": 1})
        cache._path(key).write_text("{ not json")
        assert cache.get(key) is None
        assert not cache._path(key).exists()

    def test_schema_mismatch_is_miss(self, tmp_path):
        cache = cache_mod.ResultCache(str(tmp_path / "c"))
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": -1, "payload": {"x": 1}}))
        assert cache.get(key) is None

    def test_clear_and_info(self, tmp_path):
        cache = cache_mod.ResultCache(str(tmp_path / "c"))
        cache.put("ab" + "0" * 62, {"x": 1})
        cache.put("cd" + "0" * 62, {"y": 2})
        info = cache.info()
        assert info["entries"] == 2 and info["bytes"] > 0
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0


class TestSimResultState:
    def test_full_fidelity_roundtrip(self):
        result = runner.bundle_for("go").simulate("U")
        state = result.to_state()
        json.dumps(state)  # must be JSON-serializable
        restored = SimResult.from_state(state)
        assert restored.to_state() == state
        assert restored.region_cycles() == result.region_cycles()
        assert restored.total_violations() == result.total_violations()
        for region in restored.regions:
            for violation in region.violations:
                assert isinstance(violation, ViolationRecord)


class TestBundleCaching:
    def test_miss_then_hit_skips_compilation(self, tmp_path, fresh_bundles):
        cache_mod.configure(True, str(tmp_path / "c"))
        cold = runner.bundle_for("go").simulate("C")

        runner.clear_cache()
        metrics_mod.reset()
        warm_bundle = runner.bundle_for("go")
        warm = warm_bundle.simulate("C")
        assert warm.to_state() == cold.to_state()
        assert not warm_bundle.is_compiled  # served entirely from disk
        run = metrics_mod.current()
        assert run.cache_hits == 1 and run.cache_misses == 0

    def test_config_change_invalidates(self, tmp_path, fresh_bundles):
        cache_mod.configure(True, str(tmp_path / "c"))
        runner.bundle_for("go").simulate("C")

        runner.clear_cache()
        metrics_mod.reset()
        bundle = runner.bundle_for("go")
        bundle.simulate("C", base=SimConfig(num_cores=8))
        assert bundle.is_compiled  # different key: had to recompute
        assert metrics_mod.current().cache_misses >= 1

    def test_corrupted_entry_recomputed(self, tmp_path, fresh_bundles):
        cache_mod.configure(True, str(tmp_path / "c"))
        cold = runner.bundle_for("go").simulate("C")

        for path in (tmp_path / "c").rglob("*.json"):
            path.write_text("truncated garbag")
        runner.clear_cache()
        bundle = runner.bundle_for("go")
        recomputed = bundle.simulate("C")
        assert bundle.is_compiled
        assert recomputed.to_state() == cold.to_state()

    def test_profile_summary_warm_without_compile(self, tmp_path, fresh_bundles):
        cache_mod.configure(True, str(tmp_path / "c"))
        cold = runner.bundle_for("go")
        summary = cold.profile_summary()
        hist = cold.distance_histogram()

        runner.clear_cache()
        warm = runner.bundle_for("go")
        assert warm.profile_summary() == summary
        assert warm.distance_histogram() == hist
        assert warm.profile_load_set(0.05) == cold.profile_load_set(0.05)
        assert not warm.is_compiled
