"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "go"])
        assert args.bar == "C" and args.cores == 4

    def test_bad_bar_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "go", "--bar", "Z"])

    def test_workload_list_parsing(self):
        args = build_parser().parse_args(
            ["figure", "7", "--workloads", "go, twolf"]
        )
        assert args.workloads == ["go", "twolf"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "m88ksim" in out and "099.go" in out

    def test_compile(self, capsys):
        assert main(["compile", "go"]) == 0
        out = capsys.readouterr().out
        assert "selected loops" in out
        assert "memory sync" in out

    def test_compile_emit(self, capsys):
        assert main(["compile", "go", "--emit", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "func main()" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "go", "--bar", "U"]) == 0
        out = capsys.readouterr().out
        assert "region time" in out and "violations" in out

    def test_simulate_other_core_count(self, capsys):
        assert main(["simulate", "go", "--bar", "C", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "cores 2" in out

    def test_figure(self, capsys):
        assert main(["figure", "7", "--workloads", "go"]) == 0
        out = capsys.readouterr().out
        assert "dist_1" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99", "--workloads", "go"]) == 1

    def test_table(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Issue Width" in out

    def test_summary(self, capsys):
        assert main(["summary", "--workloads", "go"]) == 0
        out = capsys.readouterr().out
        assert "winner=C" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "results.md"
        assert main([
            "report", "-o", str(target), "--workloads", "go",
        ]) == 0
        text = target.read_text()
        assert "### Table 1" in text and "### Figure 10" in text
