"""Experiment harnesses: row structure and headline claims (on subsets)."""

import pytest

from repro.experiments import (
    fig02_potential,
    fig06_threshold,
    fig07_distance,
    fig08_compiler_sync,
    fig09_sync_cost,
    fig10_comparison,
    fig11_overlap,
    fig12_program,
    format_table,
    table1_config,
    table2_speedups,
)
from repro.experiments.reporting import BAR_COLUMNS
from repro.experiments.runner import BAR_PROGRAM, bundle_for, config_for

SUBSET = ["go", "m88ksim", "gzip_decomp"]


class TestRunner:
    def test_bundle_memoized(self):
        assert bundle_for("go") is bundle_for("go")

    def test_bar_program_mapping(self):
        assert BAR_PROGRAM["U"] == "baseline"
        assert BAR_PROGRAM["C"] == "sync_ref"
        assert BAR_PROGRAM["T"] == "sync_train"
        assert BAR_PROGRAM["B"] == "sync_ref"

    def test_config_for_known_bars(self):
        assert config_for("H").hw_sync
        assert config_for("O").oracle_mode == "all"
        with pytest.raises(ValueError):
            config_for("X")

    def test_simulation_memoized(self):
        bundle = bundle_for("go")
        assert bundle.simulate("U") is bundle.simulate("U")


def assert_bar_rows(rows, bars):
    assert {r["bar"] for r in rows} == set(bars)
    for row in rows:
        assert row["time"] > 0
        total = row["busy"] + row["fail"] + row["sync"] + row["other"]
        assert abs(total - row["time"]) < 1e-6


class TestFig02:
    def test_rows(self):
        rows = fig02_potential.run(SUBSET)
        assert_bar_rows(rows, ("U", "O"))
        assert len(rows) == len(SUBSET) * 2

    def test_perfect_forwarding_always_helps(self):
        rows = fig02_potential.run(SUBSET)
        gains = fig02_potential.potential_gain(rows)
        assert all(g >= 1.0 for g in gains.values())
        # the paper's headline: substantial gains for most benchmarks
        assert sum(1 for g in gains.values() if g > 1.5) >= 2

    def test_o_bars_have_no_fail(self):
        rows = fig02_potential.run(SUBSET)
        for row in rows:
            if row["bar"] == "O":
                assert row["fail"] < 2.0


class TestFig06:
    def test_thresholds_monotone(self):
        rows = fig06_threshold.run(["bzip2_comp"])
        by_bar = {r["bar"]: r["time"] for r in rows}
        assert by_bar[">5%"] <= by_bar[">15%"] + 1e-6
        assert by_bar[">15%"] <= by_bar[">25%"] + 1e-6
        assert by_bar[">25%"] <= by_bar["U"] + 1e-6

    def test_bzip2_comp_needs_the_low_threshold(self):
        """§2.4: only predicting the >5% loads makes it speed up."""
        rows = fig06_threshold.run(["bzip2_comp"])
        by_bar = {r["bar"]: r["time"] for r in rows}
        assert by_bar[">25%"] > 90.0
        assert by_bar[">5%"] < 90.0


class TestFig07:
    def test_fractions_sum_to_100(self):
        rows = fig07_distance.run(SUBSET)
        for row in rows:
            if row["events"]:
                total = row["dist_1"] + row["dist_2"] + row["dist_gt2"]
                assert abs(total - 100.0) < 1e-6

    def test_twolf_distance_two(self):
        rows = fig07_distance.run(["twolf"])
        assert rows[0]["dist_2"] > 90.0

    def test_chain_dependences_distance_one(self):
        rows = fig07_distance.run(["gzip_decomp"])
        assert rows[0]["dist_1"] > 90.0


class TestFig08:
    def test_rows(self):
        rows = fig08_compiler_sync.run(SUBSET)
        assert_bar_rows(rows, ("U", "T", "C"))

    def test_improved_list_and_fail_reduction(self):
        rows = fig08_compiler_sync.run(["go", "gzip_decomp", "m88ksim"])
        improved = fig08_compiler_sync.improved_workloads(rows)
        assert "go" in improved and "gzip_decomp" in improved
        assert "m88ksim" not in improved
        reduction = fig08_compiler_sync.fail_reduction(rows)
        assert reduction["go"] > 0.6  # paper: fail cut by ~68% on average


class TestFig09:
    def test_e_le_c_le_l(self):
        rows = fig09_sync_cost.run(SUBSET)
        by_key = {(r["workload"], r["bar"]): r["time"] for r in rows}
        for name in SUBSET:
            assert by_key[(name, "E")] <= by_key[(name, "C")] + 1.0
            assert by_key[(name, "C")] <= by_key[(name, "L")] + 1.0

    def test_gzip_decomp_sync_sensitive(self):
        rows = fig09_sync_cost.run(["gzip_decomp"])
        assert "gzip_decomp" in fig09_sync_cost.sync_sensitive(rows)


class TestFig10:
    def test_rows(self):
        rows = fig10_comparison.run(SUBSET)
        assert_bar_rows(rows, ("U", "P", "H", "C", "B"))

    def test_winner_classification(self):
        rows = fig10_comparison.run(["go", "m88ksim"])
        winners = fig10_comparison.best_scheme(rows)
        assert winners["go"] == "C"
        assert winners["m88ksim"] == "H"

    def test_hybrid_tracks_best(self):
        rows = fig10_comparison.run(["go", "m88ksim", "gzip_decomp"])
        tracked = fig10_comparison.hybrid_tracks_best(rows)
        assert all(tracked.values())


class TestFig11:
    def test_rows_and_modes(self):
        rows = fig11_overlap.run(["gzip_comp"])
        assert {r["mode"] for r in rows} == {"U", "C", "H", "B"}
        for row in rows:
            parts = (
                row["compiler_only"] + row["hardware_only"]
                + row["both"] + row["neither"]
            )
            assert parts == row["violations"]

    def test_schemes_complementary(self):
        """§4.2: loads only one scheme would synchronize exist."""
        rows = fig11_overlap.run(["gzip_comp"])
        assert "gzip_comp" in fig11_overlap.complementary_workloads(rows)

    def test_stalling_reduces_marked_violations(self):
        rows = fig11_overlap.run(["gzip_comp"])
        by_mode = {r["mode"]: r for r in rows}
        assert by_mode["B"]["violations"] < by_mode["U"]["violations"]
        # stalling for the compiler's marks removes compiler-marked hits
        assert by_mode["C"]["compiler_only"] <= by_mode["U"]["compiler_only"]


class TestFig12AndTable2:
    def test_program_times(self):
        rows = fig12_program.run(SUBSET)
        for row in rows:
            assert row["program_time"] > 0
            assert 0 < row["coverage"] <= 100

    def test_low_coverage_dilutes_gains(self):
        rows = fig12_program.run(["go"])  # 22% coverage
        by_bar = {r["bar"]: r for r in rows}
        region_gain = by_bar["U"]["region_time"] - by_bar["C"]["region_time"]
        program_gain = by_bar["U"]["program_time"] - by_bar["C"]["program_time"]
        assert 0 < program_gain < region_gain

    def test_table2_columns(self):
        rows = table2_speedups.run(SUBSET)
        for row in rows:
            assert row["region_speedup_compiler"] > 0
            assert 0 < row["seq_region_speedup"] <= 1.0
            # sequential-region slowdown caps the program speedup
            assert row["program_speedup_both"] <= max(
                row["region_speedup_both"], 1.0 / row["seq_region_speedup"]
            ) + 1e-9

    def test_program_time_formula(self):
        assert fig12_program.program_time(100.0, 1.0, 1.0) == 100.0
        assert fig12_program.program_time(50.0, 0.5, 1.0) == 75.0
        # instrumentation overhead inflates the sequential part
        assert fig12_program.program_time(50.0, 0.5, 0.8) == 25.0 + 62.5


class TestTable1:
    def test_rows(self):
        rows = table1_config.run()
        assert {"parameter", "value"} <= set(rows[0])
        assert any(r["parameter"] == "Issue Width" for r in rows)

    def test_config_consistency(self):
        assert table1_config.verify() == []


class TestReporting:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}]
        text = format_table(rows, ("a", "b"), title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_bar_columns(self):
        assert BAR_COLUMNS[0] == "workload"
