"""The parallel runner: planning, determinism, and run metrics."""

import json

from repro.experiments import cache as cache_mod
from repro.experiments import metrics as metrics_mod
from repro.experiments import runner

WORKLOADS = ["go", "mcf", "perlbmk"]
BARS = ("U", "C", "H", "B")


class TestPlanning:
    def test_plan_bar_jobs_shape(self):
        specs = runner.plan_bar_jobs(WORKLOADS, BARS)
        # one spec per (workload, bar) plus SEQ per workload
        assert len(specs) == len(WORKLOADS) * (len(BARS) + 1)
        assert all(spec.kind == "bar" for spec in specs)

    def test_graph_compile_dependencies(self):
        specs = runner.plan_bar_jobs(["go"], ("U", "C"))
        graph = runner.JobGraph.build(specs)
        sims = graph.sim_nodes()
        assert len(sims) == len(specs)
        for node in sims:
            assert node.deps, "every sim node depends on its compile node"

    def test_groups_are_per_workload(self):
        specs = runner.plan_bar_jobs(WORKLOADS, BARS)
        graph = runner.JobGraph.build(specs)
        groups = graph.groups(specs)
        assert len(groups) == len(WORKLOADS)
        for name, _threshold, members in groups:
            assert {spec.workload for spec in members} == {name}


class TestDeterminism:
    def _collect(self):
        state = {}
        for name in WORKLOADS:
            bundle = runner.bundle_for(name)
            for bar in BARS + ("SEQ",):
                state[(name, bar)] = bundle.simulate(bar).to_state()
        return state

    def test_parallel_matches_serial(self, fresh_bundles):
        """Fan-out over 2 workers is bit-identical to the serial path."""
        serial = self._collect()

        runner.clear_cache()
        metrics_mod.reset(workers=2)
        specs = runner.plan_bar_jobs(WORKLOADS, BARS)
        runner.execute_plan(specs, jobs=2)

        # Results were computed in workers and merged back: the parent's
        # bundles serve them from memo without ever compiling.
        for name in WORKLOADS:
            assert not runner.bundle_for(name).is_compiled
        assert self._collect() == serial

        run = metrics_mod.current()
        sources = {job.source for job in run.jobs}
        assert sources == {metrics_mod.SOURCE_WORKER}
        # one metric per sim spec, plus one compile record per workload
        # (the artifact store was disabled, so every compile really ran)
        sims = [job for job in run.jobs if job.kind not in ("compile", "oracle")]
        compiles = [job for job in run.jobs if job.kind == "compile"]
        assert len(sims) == len(specs)
        assert {job.workload for job in compiles} == set(WORKLOADS)


class TestExecuteMetrics:
    def test_cold_then_warm_hits(self, tmp_path, fresh_bundles):
        cache_mod.configure(True, str(tmp_path / "c"))
        specs = runner.plan_bar_jobs(["go"], ("U", "C"))

        metrics_mod.reset()
        runner.execute_plan(specs, jobs=1)
        cold = metrics_mod.current()
        assert cold.cache_misses > 0 and cold.cache_hits == 0

        runner.clear_cache()
        metrics_mod.reset()
        runner.execute_plan(specs, jobs=1)
        warm = metrics_mod.current()
        assert warm.cache_misses == 0
        assert warm.cache_hits == len(specs)
        assert warm.hit_rate == 1.0
        assert not runner.bundle_for("go").is_compiled

    def test_run_metrics_json(self, tmp_path, fresh_bundles):
        cache_mod.configure(True, str(tmp_path / "c"))
        specs = runner.plan_bar_jobs(["go"], ("U",))
        metrics_mod.reset()
        runner.execute_plan(specs, jobs=1)
        run = metrics_mod.current()
        run.stop()

        out = tmp_path / "run_metrics.json"
        run.write(str(out))
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["jobs"] == len(run.jobs)
        assert data["cache"]["misses"] == run.cache_misses
        assert len(data["per_job"]) == len(run.jobs)
        assert data["wall_s"] > 0

    def test_summary_table_renders(self):
        metrics_mod.reset(workers=2)
        metrics_mod.current().record("go", "C", "bar", metrics_mod.SOURCE_CACHE, 0.0)
        metrics_mod.current().stop()
        text = metrics_mod.current().format_summary()
        assert "run metrics" in text
        assert "cache hit rate" in text
        assert "100%" in text
