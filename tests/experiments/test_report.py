"""The report generator and scorecard plumbing."""

from repro.experiments.report import SECTIONS, generate_report, summary_lines
from repro.experiments.validate import ClaimResult, format_scorecard


class TestGenerateReport:
    def test_section_filter(self):
        text = generate_report(workloads=["go"], sections=["table 1"])
        assert "### Table 1" in text
        assert "### Figure" not in text

    def test_full_subset_report_has_all_sections(self):
        text = generate_report(workloads=["go"])
        for title, _runner, _columns, _needs in SECTIONS:
            assert f"### {title}" in text

    def test_unknown_section_empty(self):
        assert generate_report(workloads=["go"], sections=["figure 99"]) == ""

    def test_summary_lines(self):
        lines = summary_lines(["go", "m88ksim"])
        assert len(lines) == 2
        assert lines[0].startswith("go")
        assert "winner=" in lines[0]


class TestScorecardFormatting:
    def test_format_marks_and_tally(self):
        results = [
            ClaimResult("claim a", "§1", True, "fine"),
            ClaimResult("claim b", "§2", False, "broken"),
        ]
        text = format_scorecard(results)
        assert "[PASS] claim a" in text
        assert "[FAIL] claim b" in text
        assert "1/2 claims reproduced" in text
