"""Simulator counters flowing into run metrics (``--metrics-out``)."""

from repro.experiments import metrics as metrics_mod
from repro.experiments.runner import bundle_for
from repro.obs.registry import engine_counters
from repro.tlssim.engine import TLSEngine

from tests.tlssim.conftest import make_counted_loop


class TestEngineCounters:
    def test_snapshot_covers_every_subsystem(self):
        engine = TLSEngine(make_counted_loop(iters=10, filler=20))
        engine.run()
        counters = engine_counters(engine)
        for name in (
            "cache_hits{level=l1}", "cache_misses{level=l1}",
            "cache_hits{level=l2}", "cache_misses{level=l2}",
            "epochs_committed", "epochs_squashed",
            "signal_buffer_high_water", "hwsync_insertions",
            "hwsync_resets", "predictions_used", "mispredictions",
        ):
            assert name in counters, name
        assert counters["epochs_committed"] == 10

    def test_result_carries_counters(self):
        result = TLSEngine(make_counted_loop(iters=10, filler=20)).run()
        assert result.counters["epochs_committed"] == 10
        assert result.counters == {
            k: v for k, v in result.to_state()["counters"].items()
        }


class TestRunMetricsAggregation:
    def test_record_attaches_counters(self):
        run = metrics_mod.reset()
        run.record("w", "C", "bar", metrics_mod.SOURCE_COMPUTED, 0.5,
                   counters={"epochs_committed": 10.0})
        run.record("w", "U", "bar", metrics_mod.SOURCE_CACHE, 0.0,
                   counters={"epochs_committed": 7.0, "violations{reason=store}": 2.0})
        assert run.sim_counters() == {
            "epochs_committed": 17.0,
            "violations{reason=store}": 2.0,
        }
        payload = run.to_dict()
        assert payload["sim"]["epochs_committed"] == 17.0
        assert payload["per_job"][0]["counters"] == {"epochs_committed": 10.0}

    def test_summary_includes_sim_lines(self):
        run = metrics_mod.reset()
        run.record("w", "C", "bar", metrics_mod.SOURCE_COMPUTED, 0.5,
                   counters={"cache_misses{level=l2}": 3.0,
                             "epochs_committed": 5.0})
        run.stop()
        summary = run.format_summary()
        assert "sim cache misses" in summary
        assert "sim epochs committed" in summary

    def test_summary_omits_sim_lines_without_counters(self):
        run = metrics_mod.reset()
        run.record("w", "compile", "compile", metrics_mod.SOURCE_COMPUTED, 1.0)
        run.stop()
        assert "sim " not in run.format_summary()

    def test_runner_records_counters_on_compute_and_cache(self):
        bundle = bundle_for("go")
        bundle._results.clear()  # force at least a memo/disk round
        run = metrics_mod.reset()
        bundle.simulate("C")
        jobs = [j for j in metrics_mod.current().jobs if j.label == "C"]
        assert jobs, "simulate() recorded nothing"
        assert jobs[-1].counters.get("epochs_committed", 0) > 0
        totals = metrics_mod.current().sim_counters()
        assert totals["epochs_committed"] > 0
