"""Tests for repro.experiments.scheduler.

Covers the DAG extracted from the batch runner (ordering, compile
sharing, grouping) and the service layer the daemon builds on:
admission control, same-key batching, single-flight key leases,
drain-with-inflight-jobs, and the SingleFlight/ReadThroughCache
concurrency primitives.
"""

import threading

import pytest

from repro.experiments.scheduler import (
    JobGraph,
    JobScheduler,
    JobSpec,
    QueueFull,
    ReadThroughCache,
    SchedulerDrained,
    SingleFlight,
    spec_id,
)

# ---------------------------------------------------------------------------
# the job DAG
# ---------------------------------------------------------------------------


def test_graph_orders_compile_before_dependents():
    specs = [
        JobSpec(workload="go", label="U", program="baseline"),
        JobSpec(workload="go", label="C", program="sync_ref"),
        JobSpec(workload="compress", label="U", program="baseline"),
    ]
    graph = JobGraph.build(specs)
    order = graph.order
    for node_id in order:
        node = graph.nodes[node_id]
        for dep in node.deps:
            assert order.index(dep) < order.index(node_id)
    # One compile node per (workload, threshold), ahead of its sims.
    compiles = [i for i in order if graph.nodes[i].spec.kind == "compile"]
    assert len(compiles) == 2
    assert order.index("compile:go@0.05") < order.index(spec_id(specs[0]))


def test_graph_shares_compile_node_per_threshold():
    specs = [
        JobSpec(workload="go", label="U", program="baseline"),
        JobSpec(workload="go", label="C", program="sync_ref"),
        JobSpec(workload="go", label="U", program="baseline", threshold=0.2),
    ]
    graph = JobGraph.build(specs)
    compiles = {
        i for i in graph.order if graph.nodes[i].spec.kind == "compile"
    }
    assert compiles == {"compile:go@0.05", "compile:go@0.2"}
    assert graph.nodes[spec_id(specs[0])].deps == ("compile:go@0.05",)
    assert graph.nodes[spec_id(specs[2])].deps == ("compile:go@0.2",)
    assert len(graph.sim_nodes()) == 3


def test_graph_groups_by_compile_key_in_first_appearance_order():
    specs = [
        JobSpec(workload="go", label="U"),
        JobSpec(workload="compress", label="U"),
        JobSpec(workload="go", label="C"),
    ]
    groups = JobGraph.build(specs).groups(specs)
    assert [(w, t, [s.label for s in batch]) for w, t, batch in groups] == [
        ("go", 0.05, ["U", "C"]),
        ("compress", 0.05, ["U"]),
    ]


def test_spec_id_distinguishes_every_field():
    base = JobSpec(workload="go")
    variants = [
        JobSpec(workload="go", label="U"),
        JobSpec(workload="go", threshold=0.1),
        JobSpec(workload="go", kind="custom"),
        JobSpec(workload="go", param=0.2),
        JobSpec(workload="go", overrides=(("num_cores", 8),)),
    ]
    ids = {spec_id(s) for s in [base] + variants}
    assert len(ids) == len(variants) + 1


# ---------------------------------------------------------------------------
# JobScheduler: admission, batching, leases, drain
# ---------------------------------------------------------------------------


def test_scheduler_batches_same_key_fifo():
    scheduler = JobScheduler(capacity=10, batch_limit=2)
    scheduler.submit(("go", 0.05), "a")
    scheduler.submit(("go", 0.05), "b")
    scheduler.submit(("go", 0.05), "c")
    key, batch = scheduler.next_batch()
    assert key == ("go", 0.05)
    assert batch == ["a", "b"]  # FIFO, capped at batch_limit
    assert scheduler.queued == 1
    assert scheduler.inflight == 2


def test_scheduler_single_flight_lease_per_key():
    scheduler = JobScheduler(capacity=10, batch_limit=16)
    scheduler.submit(("go", 0.05), "a")
    key, batch = scheduler.next_batch()
    assert batch == ["a"]
    # A token arriving while the key is leased must NOT be handed out:
    # the cold compile for the key is already running.
    scheduler.submit(("go", 0.05), "b")
    assert scheduler.next_batch() is None
    scheduler.complete(key)
    key2, batch2 = scheduler.next_batch()
    assert (key2, batch2) == (key, ["b"])


def test_scheduler_leases_other_keys_while_one_is_busy():
    scheduler = JobScheduler(capacity=10)
    scheduler.submit(("go", 0.05), "a")
    scheduler.submit(("compress", 0.05), "b")
    key1, _ = scheduler.next_batch()
    key2, _ = scheduler.next_batch()
    assert {key1, key2} == {("go", 0.05), ("compress", 0.05)}
    assert scheduler.next_batch() is None
    assert set(scheduler.leased_keys) == {key1, key2}


def test_scheduler_queue_full_counts_only_unleased():
    scheduler = JobScheduler(capacity=2)
    scheduler.submit("k", 1)
    scheduler.submit("k", 2)
    with pytest.raises(QueueFull):
        scheduler.submit("k", 3)
    # Leasing frees queue capacity (the tokens became in-flight).
    scheduler.next_batch()
    scheduler.submit("k", 3)
    assert scheduler.queued == 1
    assert scheduler.inflight == 2


def test_scheduler_drain_with_inflight_jobs():
    scheduler = JobScheduler(capacity=10)
    scheduler.submit("k", 1)
    scheduler.submit("k", 2)
    key, batch = scheduler.next_batch()
    assert batch == [1, 2]
    scheduler.drain()
    with pytest.raises(SchedulerDrained):
        scheduler.submit("k", 3)
    # In-flight work keeps the scheduler busy until completed.
    assert not scheduler.idle()
    scheduler.complete(key)
    assert scheduler.idle()


def test_scheduler_drain_flushes_queued_work():
    scheduler = JobScheduler(capacity=10)
    scheduler.submit("a", 1)
    scheduler.submit("b", 2)
    scheduler.drain()
    served = []
    while True:
        leased = scheduler.next_batch()
        if leased is None:
            break
        served.extend(leased[1])
        scheduler.complete(leased[0])
    assert served == [1, 2]
    assert scheduler.idle()


def test_scheduler_complete_requires_lease():
    scheduler = JobScheduler()
    with pytest.raises(KeyError):
        scheduler.complete("nope")


# ---------------------------------------------------------------------------
# SingleFlight / ReadThroughCache
# ---------------------------------------------------------------------------


def test_single_flight_coalesces_concurrent_calls():
    flight = SingleFlight()
    gate = threading.Event()
    started = threading.Event()
    calls = []
    results = []

    def loader():
        calls.append(1)
        started.set()
        gate.wait(5.0)
        return "value"

    def worker():
        results.append(flight.do("key", loader))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    threads[0].start()
    assert started.wait(5.0)  # the leader is inside loader
    for thread in threads[1:]:
        thread.start()
    gate.set()
    for thread in threads:
        thread.join(5.0)
    assert len(calls) == 1  # exactly one compile for 8 racers
    assert results == ["value"] * 8


def test_single_flight_propagates_leader_error_then_retries():
    flight = SingleFlight()

    def boom():
        raise RuntimeError("compile failed")

    with pytest.raises(RuntimeError):
        flight.do("key", boom)
    # Flights are not memoized: the next call runs fresh.
    assert flight.do("key", lambda: 42) == 42


def test_read_through_cache_single_flight_then_memo():
    cache = ReadThroughCache()
    gate = threading.Event()
    calls = []
    results = []

    def loader():
        calls.append(1)
        gate.wait(5.0)
        return "bundle"

    def worker():
        results.append(cache.get("key", loader))

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    gate.set()
    for thread in threads:
        thread.join(5.0)
    assert len(calls) == 1
    assert results == ["bundle"] * 6
    assert "key" in cache and len(cache) == 1
    # Memoized: later calls never invoke the loader again.
    assert cache.get("key", lambda: "other") == "bundle"
    cache.clear()
    assert cache.get("key", lambda: "other") == "other"


def test_read_through_cache_retries_after_loader_failure():
    cache = ReadThroughCache()
    with pytest.raises(ValueError):
        cache.get("k", lambda: (_ for _ in ()).throw(ValueError("nope")))
    assert "k" not in cache
    assert cache.get("k", lambda: 7) == 7
