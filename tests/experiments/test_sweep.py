"""The sweep lab: grids, resumable execution, scaling surfaces.

Grid tests are pure validation (no simulation); the run tests drive
``run_sweep`` over tiny one-workload grids and pin the resume
contract — a rerun computes zero points, a partial (``max_points``)
run resumes exactly where it stopped, and a foreign or stale state
file is ignored rather than trusted.
"""

import json

import pytest

from repro.sweep.grid import (
    GridError,
    SweepPoint,
    build_grid,
    load_grid,
    parse_axis,
)
from repro.sweep.run import run_sweep
from repro.sweep.surface import (
    pick_axes,
    render_ascii_surface,
    render_html_surface,
    surface_table,
)


class TestParseAxis:
    def test_parses_and_coerces(self):
        assert parse_axis("num_cores=2,4,8") == ("num_cores", (2, 4, 8))
        assert parse_axis("spawn_cost=2.5") == ("spawn_cost", (2.5,))
        assert parse_axis("hw_hint_persistent=true,false") == (
            "hw_hint_persistent", (True, False),
        )

    def test_special_axes_stay_strings(self):
        assert parse_axis("bar=U,C") == ("bar", ("U", "C"))
        assert parse_axis("workload=go") == ("workload", ("go",))

    @pytest.mark.parametrize("bad", ("num_cores", "=2,4", "num_cores="))
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(GridError):
            parse_axis(bad)


class TestGridValidation:
    def test_unknown_axis_name(self):
        with pytest.raises(GridError, match="unknown config axis"):
            build_grid(["go"], ["U"], axes=[("num_corez", (2,))])

    def test_bad_axis_value(self):
        with pytest.raises(GridError, match="num_cores must be between"):
            build_grid(["go"], ["U"], axes=[("num_cores", (0,))])

    def test_special_axis_as_override(self):
        with pytest.raises(GridError, match="special axis"):
            build_grid(["go"], ["U"], axes=[("bar", ("U",))])

    def test_unknown_workload_and_bar(self):
        with pytest.raises(GridError, match="unknown workload"):
            build_grid(["nope"], ["U"])
        with pytest.raises(GridError, match="unknown bar"):
            build_grid(["go"], ["XX"])

    def test_axes_and_points_are_exclusive(self):
        with pytest.raises(GridError, match="mutually exclusive"):
            build_grid(
                ["go"], ["U"],
                axes=[("num_cores", (2,))],
                points=[{"num_cores": 4}],
            )

    def test_expansion_order_and_count(self):
        grid = build_grid(
            ["go", "mcf"], ["U", "C"],
            axes=[("num_cores", (2, 4))],
        )
        points = grid.expand()
        assert len(points) == 8  # 2 workloads x 2 cores x 2 bars
        # workload-major so the runner keeps one bundle hot per chunk
        assert [p.workload for p in points[:4]] == ["go"] * 4

    def test_explicit_points(self):
        grid = build_grid(
            ["go"], ["P"],
            points=[
                {"num_cores": 2},
                {"num_cores": 8, "predictor": "stride"},
            ],
        )
        assert len(grid.expand()) == 2
        assert grid.axis_names() == ["num_cores"]  # predictor: 1 value

    def test_point_ids_are_stable_and_distinct(self):
        a = SweepPoint("go", "P", 0.05, (("num_cores", 2),))
        b = SweepPoint("go", "P", 0.05, (("num_cores", 2),))
        c = SweepPoint("go", "P", 0.05, (("num_cores", 4),))
        assert a.point_id == b.point_id
        assert a.point_id != c.point_id

    def test_axis_value_falls_back_to_config_default(self):
        point = SweepPoint("go", "P", 0.05, ())
        assert point.axis_value("num_cores") == 4
        assert point.axis_value("workload") == "go"
        assert point.axis_value("bar") == "P"

    def test_grid_key_tracks_content(self):
        grid_a = build_grid(["go"], ["U"], axes=[("num_cores", (2, 4))])
        grid_b = build_grid(["go"], ["U"], axes=[("num_cores", (2, 8))])
        assert grid_a.grid_key() != grid_b.grid_key()
        assert grid_a.grid_key() == build_grid(
            ["go"], ["U"], axes=[("num_cores", (2, 4))]
        ).grid_key()


class TestLoadGrid:
    def _write(self, tmp_path, payload) -> str:
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_loads_a_valid_grid(self, tmp_path):
        path = self._write(tmp_path, {
            "workloads": ["go"],
            "bars": ["p", "ps"],  # case-normalized
            "axes": {"num_cores": [2, 8]},
        })
        grid = load_grid(path)
        assert grid.bars == ("P", "PS")
        assert len(grid.expand()) == 4

    @pytest.mark.parametrize(
        "payload,match",
        (
            ({"bars": ["U"]}, "'workloads'"),
            ({"workloads": ["go"]}, "'bars'"),
            ({"workloads": ["go"], "bars": ["U"], "extra": 1},
             "unknown grid key"),
            ({"workloads": ["go"], "bars": ["U"], "axes": []},
             "'axes' must be an object"),
            ({"workloads": ["go"], "bars": ["U"],
              "axes": {"num_cores": 2}}, "must map to a list"),
        ),
    )
    def test_rejects_malformed_files(self, tmp_path, payload, match):
        with pytest.raises(GridError, match=match):
            load_grid(self._write(tmp_path, payload))

    def test_missing_file(self, tmp_path):
        with pytest.raises(GridError, match="cannot read grid file"):
            load_grid(str(tmp_path / "absent.json"))


@pytest.fixture
def small_grid():
    return build_grid(
        ["go"], ["P"],
        axes=[("num_cores", (2, 4)), ("predictor", ("last", "stride"))],
    )


class TestRunSweep:
    def test_runs_and_resumes_with_zero_recompute(
        self, small_grid, tmp_path
    ):
        out = str(tmp_path / "sweep")
        first = run_sweep(small_grid, out_dir=out)
        assert first.complete and first.computed == 4
        assert first.resumed == 0
        assert {r["bar"] for r in first.records} == {"P"}
        for record in first.records:
            assert record["metrics"]["region_time"] > 0
            assert record["metrics"]["speedup"] > 0

        second = run_sweep(small_grid, out_dir=out)
        assert second.complete
        assert second.computed == 0 and second.resumed == 4
        assert second.records == first.records

    def test_max_points_leaves_a_resumable_partial(
        self, small_grid, tmp_path
    ):
        out = str(tmp_path / "sweep")
        partial = run_sweep(small_grid, out_dir=out, max_points=3)
        assert not partial.complete
        assert partial.computed == 3 and partial.total == 4

        resumed = run_sweep(small_grid, out_dir=out)
        assert resumed.complete
        assert resumed.computed == 1 and resumed.resumed == 3

    def test_fresh_ignores_existing_state(self, small_grid, tmp_path):
        out = str(tmp_path / "sweep")
        run_sweep(small_grid, out_dir=out)
        rerun = run_sweep(small_grid, out_dir=out, fresh=True)
        assert rerun.computed == 4 and rerun.resumed == 0

    def test_foreign_state_is_ignored(self, small_grid, tmp_path):
        out = tmp_path / "sweep"
        other = build_grid(["go"], ["P"], axes=[("num_cores", (2, 8))])
        run_sweep(other, out_dir=str(out))
        # same directory, different grid: nothing resumes
        outcome = run_sweep(small_grid, out_dir=str(out))
        assert outcome.resumed == 0 and outcome.computed == 4

    def test_corrupt_state_is_ignored(self, small_grid, tmp_path):
        out = tmp_path / "sweep"
        out.mkdir()
        (out / "sweep_state.json").write_text("{not json")
        outcome = run_sweep(small_grid, out_dir=str(out))
        assert outcome.resumed == 0 and outcome.complete

    def test_seq_baseline_is_shared_across_scheme_axes(
        self, small_grid, tmp_path, fresh_bundles
    ):
        """Predictor axes must not fragment the sequential baseline."""
        from repro.experiments import metrics as metrics_mod

        metrics_mod.reset()
        run_sweep(small_grid, out_dir=str(tmp_path / "sweep"))
        seq_jobs = [
            j for j in metrics_mod.current().jobs
            if j.kind == "bar" and j.label == "SEQ"
            and j.source in ("computed", "worker")
        ]
        # 2 distinct machine points (num_cores), not 4 scheme points
        assert len(seq_jobs) == 2, [j.label for j in seq_jobs]


class TestSurface:
    def _records(self, small_grid, tmp_path):
        return run_sweep(
            small_grid, out_dir=str(tmp_path / "sweep")
        ).records

    def test_pick_axes_prefers_config_axes(self, small_grid):
        assert pick_axes(small_grid) == ("num_cores", "predictor")
        assert pick_axes(small_grid, rows="predictor") == (
            "predictor", "num_cores",
        )
        with pytest.raises(ValueError, match="both"):
            pick_axes(small_grid, rows="num_cores", cols="num_cores")

    def test_surface_table_shape(self, small_grid, tmp_path):
        records = self._records(small_grid, tmp_path)
        rows, columns = surface_table(
            records, "num_cores", "predictor", "region_time"
        )
        assert columns == ["num_cores", "last", "stride"]
        assert [r["num_cores"] for r in rows] == ["2", "4"]
        for row in rows:
            assert isinstance(row["last"], float)

    def test_ascii_surface_renders(self, small_grid, tmp_path):
        records = self._records(small_grid, tmp_path)
        text = render_ascii_surface(
            records, "num_cores", "predictor", "region_time"
        )
        assert "scaling surface" in text
        assert "num_cores" in text and "stride" in text

    def test_html_surface_is_self_contained(self, small_grid, tmp_path):
        records = self._records(small_grid, tmp_path)
        html = render_html_surface(
            records, small_grid, "num_cores", "predictor", "speedup"
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "<script src" not in html and "href=" not in html
        assert "stride" in html and "</table>" in html
