"""``repro trace``: traced runs and their export formats."""

import json

from repro.cli import build_parser, main
from repro.experiments.trace import default_output, export, run_traced
from repro.obs.export import read_jsonl, validate_chrome_trace

WORKLOAD = "go"  # small; the suite keeps its compiled bundle warm


class TestRunTraced:
    def test_collects_stream_and_metrics(self):
        run = run_traced(WORKLOAD, bar="C")
        assert run.events, "no events collected"
        kinds = {e.kind for e in run.events}
        assert {"region_start", "epoch_start", "commit"} <= kinds
        assert run.result.counters["epochs_committed"] > 0
        flat = run.registry.flat()
        assert any(k.startswith("events{") for k in flat)

    def test_timeline_renders(self):
        art = run_traced(WORKLOAD, bar="C").timeline(width=50)
        assert art.splitlines()[1].startswith("core 0 |")

    def test_oracle_bar(self):
        run = run_traced(WORKLOAD, bar="O")
        assert run.result.counters["epochs_committed"] > 0


class TestExportFormats:
    def test_default_output_names(self):
        assert default_output("go", "C", "chrome") == "trace_go_C.json"
        assert default_output("go", "C", "jsonl") == "trace_go_C.jsonl"
        assert default_output("go", "C", "html") == "trace_go_C.html"
        assert default_output("go", "C", "timeline") == "trace_go_C.txt"

    def test_chrome_export_validates(self, tmp_path):
        run = run_traced(WORKLOAD, bar="C")
        path = str(tmp_path / "t.json")
        export(run, "chrome", path)
        payload = json.load(open(path))
        assert validate_chrome_trace(payload) == []
        assert payload["metadata"]["num_cores"] == run.num_cores

    def test_jsonl_export_round_trips(self, tmp_path):
        run = run_traced(WORKLOAD, bar="C")
        path = str(tmp_path / "t.jsonl")
        export(run, "jsonl", path)
        header, events = read_jsonl(path)
        assert header["workload"] == WORKLOAD and header["bar"] == "C"
        assert events == run.events

    def test_html_export(self, tmp_path):
        run = run_traced(WORKLOAD, bar="C")
        path = str(tmp_path / "t.html")
        export(run, "html", path)
        html = open(path).read()
        assert "<html" in html and WORKLOAD in html

    def test_timeline_export(self, tmp_path):
        run = run_traced(WORKLOAD, bar="C")
        path = str(tmp_path / "t.txt")
        export(run, "timeline", path)
        assert "core 0 |" in open(path).read()


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace", "--workload", "go"])
        assert args.bar == "C" and args.format == "chrome"
        assert args.output is None

    def test_chrome_via_cli(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["trace", "--workload", WORKLOAD, "--bar", "C",
             "--format", "chrome", "-o", str(out)]
        ) == 0
        assert validate_chrome_trace(json.load(open(out))) == []
        assert str(out) in capsys.readouterr().out

    def test_timeline_to_stdout(self, capsys):
        assert main(
            ["trace", "--workload", WORKLOAD, "--format", "timeline"]
        ) == 0
        assert "core 0 |" in capsys.readouterr().out
