"""End-to-end reproduction claims, across the full benchmark suite.

Each test pins one of the paper's quantitative claims to the
reproduction.  These are the assertions EXPERIMENTS.md reports; they
compile and simulate every workload (memoized per session), so this
module is the slowest in the suite.
"""

import pytest

from repro.experiments import (
    fig02_potential,
    fig08_compiler_sync,
    fig10_comparison,
    fig11_overlap,
    fig12_program,
)
from repro.experiments.runner import bundle_for
from repro.ir.interpreter import run_module
from repro.workloads import all_workloads

ALL = [w.name for w in all_workloads()]


@pytest.fixture(scope="module")
def fig10_rows():
    return fig10_comparison.run(ALL)


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL)
    def test_every_binary_and_scheme_is_correct(self, name):
        bundle = bundle_for(name)
        expected = run_module(bundle.compiled.seq).return_value
        seq = bundle.simulate("SEQ")
        assert seq.return_value == expected
        for bar in ("U", "C", "T", "H", "B"):
            result = bundle.simulate(bar)
            assert result.return_value == expected, (name, bar)
            assert result.memory_checksum == seq.memory_checksum, (name, bar)

    @pytest.mark.parametrize("name", ALL)
    def test_signal_buffer_never_exceeds_ten_entries(self, name):
        """Paper §2.2: 'we never need a buffer larger than 10-entries'."""
        bundle = bundle_for(name)
        for bar in ("C", "B"):
            for region in bundle.simulate(bar).regions:
                assert region.max_signal_buffer <= 10


class TestFigure2Claim:
    def test_eliminating_failed_speculation_helps_most_benchmarks(self):
        """§1.2: 'for most benchmarks, eliminating failed speculation
        results in a substantial performance gain.'"""
        rows = fig02_potential.run(ALL)
        gains = fig02_potential.potential_gain(rows)
        substantial = [name for name, gain in gains.items() if gain > 1.3]
        assert len(substantial) >= 8, sorted(gains.items())


class TestFigure8Claims:
    def test_compiler_sync_improves_about_half(self):
        """§4.1: C improves roughly half of the benchmarks."""
        rows = fig08_compiler_sync.run(ALL)
        improved = fig08_compiler_sync.improved_workloads(rows)
        assert 6 <= len(improved) <= 10, improved
        for name in ("go", "gzip_comp", "gzip_decomp", "gcc", "parser",
                     "perlbmk", "gap"):
            assert name in improved, improved

    def test_fail_slots_cut_dramatically_on_improvers(self):
        """§4.1: fail reduced by an average of 68% on the improved set."""
        rows = fig08_compiler_sync.run(ALL)
        improved = set(fig08_compiler_sync.improved_workloads(rows))
        reductions = fig08_compiler_sync.fail_reduction(rows)
        on_improvers = [reductions[n] for n in improved if n in reductions]
        average = sum(on_improvers) / len(on_improvers)
        assert average > 0.55, reductions

    def test_only_gzip_comp_is_profile_sensitive(self):
        rows = fig08_compiler_sync.run(ALL)
        by_key = {(r["workload"], r["bar"]): r["time"] for r in rows}
        sensitive = [
            name
            for name in ALL
            if abs(by_key[(name, "T")] - by_key[(name, "C")]) > 5.0
        ]
        assert sensitive == ["gzip_comp"]


class TestFigure10Claims:
    def test_prediction_insignificant(self, fig10_rows):
        """§4.2: value prediction has insignificant effect."""
        by_key = {(r["workload"], r["bar"]): r["time"] for r in fig10_rows}
        deltas = [
            abs(by_key[(name, "P")] - by_key[(name, "U")]) for name in ALL
        ]
        assert sum(d < 3.0 for d in deltas) >= 12

    def test_at_least_eleven_benchmarks_improved_by_some_scheme(self, fig10_rows):
        """§4.2: 'In eleven out of the fifteen benchmarks, at least one
        synchronization technique is able to improve performance.'"""
        by_key = {(r["workload"], r["bar"]): r["time"] for r in fig10_rows}
        improved = [
            name
            for name in ALL
            if min(by_key[(name, "H")], by_key[(name, "C")])
            < by_key[(name, "U")] - 2.0
        ]
        assert len(improved) >= 10, improved

    def test_compiler_best_set(self, fig10_rows):
        """§4.2: GO, GZIP_DECOMP, PERLBMK, GAP best with compiler."""
        winners = fig10_comparison.best_scheme(fig10_rows)
        for name in ("go", "gzip_decomp", "perlbmk", "gap"):
            assert winners[name] == "C", (name, winners[name])

    def test_hardware_best_set(self, fig10_rows):
        """§4.2: M88KSIM and VPR_PLACE best with hardware (GZIP_COMP is
        a near-tie in the reproduction; see EXPERIMENTS.md)."""
        winners = fig10_comparison.best_scheme(fig10_rows)
        for name in ("m88ksim", "vpr_place"):
            assert winners[name] == "H", (name, winners[name])

    def test_hybrid_tracks_the_best_scheme_overall(self, fig10_rows):
        """§5: the hybrid 'did a better job of tracking the best
        performance overall than either approach individually.'"""
        by_key = {(r["workload"], r["bar"]): r["time"] for r in fig10_rows}
        def total_excess(bar):
            return sum(
                by_key[(name, bar)]
                - min(by_key[(name, "H")], by_key[(name, "C")])
                for name in ALL
            )
        assert total_excess("B") < total_excess("C")
        assert total_excess("B") < total_excess("H")


class TestFigure11Claim:
    def test_schemes_choose_different_loads(self):
        """§4.2: 'a significant number of violating loads would only be
        synchronized by either the hardware or the compiler, but not
        both.'"""
        rows = fig11_overlap.run(["gzip_comp", "go", "vpr_place"])
        complementary = fig11_overlap.complementary_workloads(rows)
        assert len(complementary) >= 2, rows


class TestFigure12Claim:
    def test_program_level_improvements(self):
        """§4.3: memory-value synchronization has 'a significant
        positive impact' for several benchmarks at program level."""
        rows = fig12_program.run(ALL)
        improved = fig12_program.significantly_improved(rows)
        assert len(improved) >= 6, improved

    def test_best_overall_is_hybrid_capable(self):
        rows = fig12_program.run(ALL)
        by_key = {(r["workload"], r["bar"]): r["program_time"] for r in rows}
        b_wins_or_ties = sum(
            1
            for name in ALL
            if by_key[(name, "B")]
            <= min(by_key[(name, "C")], by_key[(name, "H")]) + 4.0
        )
        assert b_wins_or_ties >= 11


class TestScorecard:
    def test_every_claim_reproduced(self):
        """The programmatic scorecard (also `python -m repro scorecard`)
        passes in full."""
        from repro.experiments.validate import format_scorecard, run_scorecard

        results = run_scorecard()
        assert all(r.ok for r in results), format_scorecard(results)

    def test_scorecard_structure(self):
        from repro.experiments.validate import CHECKS, run_scorecard

        results = run_scorecard()
        assert len(results) == len(CHECKS) >= 10
        for result in results:
            assert result.claim and result.where and result.detail
