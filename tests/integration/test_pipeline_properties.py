"""Property-based end-to-end pipeline testing.

Hypothesis generates whole workloads — a random loop structure with
random shared/private memory traffic, conditionals and helper calls,
plus seeded input data — and the full pipeline (selection, unrolling,
scalar sync, scheduling, profiling, grouping, cloning, memory sync)
compiles them.  Every produced binary must behave identically to the
original under the reference interpreter, and every simulated scheme
must reproduce that behaviour on the TLS machine.

This subsumes per-pass semantic tests: any unsound interaction between
passes, or between the inserted synchronization and the speculation
machinery, shows up as a result/memory mismatch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.pipeline import compile_workload
from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import run_module
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine
from repro.tlssim.sequential import simulate_tls
from repro.workloads.base import lcg_stream

SAFE_OPS = ("add", "sub", "mul", "xor", "and", "or", "min", "max")


@st.composite
def random_workload_builder(draw):
    """A deterministic builder closed over a random program structure."""
    iters = draw(st.integers(min_value=8, max_value=30))
    shared_count = draw(st.integers(min_value=1, max_value=2))
    use_helper = draw(st.booleans())
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, 3),                     # action kind
                st.sampled_from(SAFE_OPS),             # operator
                st.integers(-9, 9),                    # constant
                st.integers(0, max(0, shared_count - 1)),  # shared index
                st.integers(0, 99),                    # condition cut
            ),
            min_size=3,
            max_size=9,
        )
    )
    filler = draw(st.integers(min_value=16, max_value=40))

    def build(input_spec):
        seed = input_spec["seed"]
        mb = ModuleBuilder("hypo")
        mb.global_var("data", iters, init=lcg_stream(seed, iters, 100))
        for index in range(shared_count):
            mb.global_var(f"s{index}", 1, init=(seed + index) % 50)
        mb.global_var("private", iters * 8)
        if use_helper:
            fb = mb.function("helper", ["v"])
            fb.block("entry")
            s_val = fb.load("@s0")
            mixed = fb.binop("xor", s_val, "v")
            fb.store("@s0", mixed)
            fb.ret(mixed)
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        daddr = fb.add("@data", "i")
        datum = fb.load(daddr)
        regs = ["i", datum.name]
        acc = fb.const(1)
        for k in range(filler):
            acc = fb.binop(SAFE_OPS[k % len(SAFE_OPS)], acc, k % 13 + 1)
        regs.append(acc.name)
        for step_index, (action, op, constant, shared, cut) in enumerate(steps):
            if action == 0:
                value = fb.binop(op, regs[step_index % len(regs)], constant)
                regs.append(value.name)
            elif action == 1:
                current = fb.load(f"@s{shared}")
                updated = fb.binop(op, current, regs[step_index % len(regs)])
                fb.store(f"@s{shared}", updated)
                regs.append(updated.name)
            elif action == 2:
                label = f"c{step_index}"
                cond = fb.binop("lt", datum, cut)
                fb.condbr(cond, f"{label}t", f"{label}j")
                fb.block(f"{label}t")
                current = fb.load(f"@s{shared}")
                fb.store(f"@s{shared}", fb.add(current, 1))
                fb.jump(f"{label}j")
                fb.block(f"{label}j")
            elif action == 3 and use_helper:
                result = fb.call("helper", [regs[step_index % len(regs)]])
                regs.append(result.name)
        offset = fb.mul("i", 8)
        slot = fb.add("@private", offset)
        fb.store(slot, regs[-1])
        fb.add("i", 1, dest="i")
        more = fb.binop("lt", "i", iters)
        fb.condbr(more, "loop", "done")
        fb.block("done")
        final = fb.load("@s0")
        fb.ret(final)
        return mb.build()

    return build


class TestPipelineEndToEnd:
    @given(random_workload_builder(), st.integers(1, 1000), st.integers(1, 1000))
    @settings(max_examples=15, deadline=None)
    def test_all_binaries_and_schemes_equivalent(self, build, seed_a, seed_b):
        compiled = compile_workload(
            "hypo", build,
            train_input={"seed": seed_a},
            ref_input={"seed": seed_b},
        )
        reference = run_module(compiled.seq)
        for attr in ("baseline", "sync_ref", "sync_train"):
            interp = run_module(getattr(compiled, attr))
            assert interp.return_value == reference.return_value, attr
            assert interp.memory.checksum() == reference.memory.checksum(), attr
        if not compiled.selected:
            return  # the loop missed the selection heuristics: nothing to simulate
        for attr, flags in (
            ("baseline", {}),
            ("sync_ref", {}),
            ("sync_train", {}),
            ("baseline", {"hw_sync": True}),
            ("sync_ref", {"hw_sync": True}),
            ("baseline", {"prediction": True}),
        ):
            config = SimConfig().with_mode(**flags) if flags else SimConfig()
            result = TLSEngine(getattr(compiled, attr), config=config).run()
            assert result.return_value == reference.return_value, (attr, flags)
            assert result.memory_checksum == reference.memory.checksum(), (
                attr,
                flags,
            )

    @given(random_workload_builder(), st.integers(1, 1000))
    @settings(max_examples=10, deadline=None)
    def test_synchronization_never_increases_violations(self, build, seed):
        compiled = compile_workload(
            "hypo2", build,
            train_input={"seed": seed},
            ref_input={"seed": seed + 7},
        )
        if not compiled.selected:
            return
        baseline = simulate_tls(compiled.baseline)
        synced = simulate_tls(compiled.sync_ref)
        baseline_violations = sum(
            len(r.violations) for r in baseline.regions
        )
        synced_violations = sum(len(r.violations) for r in synced.regions)
        # Synchronizing profiled dependences may add SAB restarts but
        # must not make failure *dramatically* worse.
        assert synced_violations <= baseline_violations + 5
