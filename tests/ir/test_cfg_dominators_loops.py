"""CFG construction, dominators, and natural-loop analysis."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.cfg import CFG
from repro.ir.dominators import DominatorTree
from repro.ir.loops import LoopForest


def diamond():
    """entry -> (left|right) -> join -> exit."""
    mb = ModuleBuilder()
    fb = mb.function("f", ["c"])
    fb.block("entry")
    fb.condbr("c", "left", "right")
    fb.block("left")
    fb.jump("join")
    fb.block("right")
    fb.jump("join")
    fb.block("join")
    fb.ret(0)
    return mb.module.function("f")


def loop_function(nested=False):
    """entry -> header <-> body (-> inner loop) -> exit."""
    mb = ModuleBuilder()
    fb = mb.function("f", ["n"])
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("header")
    fb.block("header")
    cond = fb.binop("lt", "i", "n")
    fb.condbr(cond, "body", "exit")
    fb.block("body")
    if nested:
        fb.const(0, dest="j")
        fb.jump("inner")
        fb.block("inner")
        fb.add("j", 1, dest="j")
        inner_c = fb.binop("lt", "j", 3)
        fb.condbr(inner_c, "inner", "latch")
        fb.block("latch")
    fb.add("i", 1, dest="i")
    fb.jump("header")
    fb.block("exit")
    fb.ret("i")
    return mb.module.function("f")


class TestCFG:
    def test_diamond_edges(self):
        cfg = CFG(diamond())
        assert set(cfg.succs["entry"]) == {"left", "right"}
        assert set(cfg.preds["join"]) == {"left", "right"}
        assert cfg.succs["join"] == []

    def test_reachability(self):
        function = diamond()
        dead = function.add_block("dead")
        from repro.ir.instructions import Ret

        dead.append(Ret())
        cfg = CFG(function)
        assert "dead" not in cfg.reachable
        assert "dead" not in cfg.reverse_postorder()

    def test_reverse_postorder_starts_at_entry(self):
        cfg = CFG(diamond())
        assert cfg.reverse_postorder()[0] == "entry"

    def test_rpo_visits_preds_before_succs_in_dag(self):
        cfg = CFG(diamond())
        order = {label: i for i, label in enumerate(cfg.reverse_postorder())}
        assert order["entry"] < order["left"]
        assert order["left"] < order["join"]
        assert order["right"] < order["join"]

    def test_unknown_branch_target_rejected(self):
        mb = ModuleBuilder()
        fb = mb.function("f")
        fb.block("entry")
        fb.jump("nowhere")
        with pytest.raises(ValueError):
            CFG(mb.module.function("f"))

    def test_exits(self):
        cfg = CFG(diamond())
        assert cfg.exits() == ["join"]


class TestDominators:
    def test_diamond_idoms(self):
        tree = DominatorTree(CFG(diamond()))
        assert tree.idom["entry"] is None
        assert tree.idom["left"] == "entry"
        assert tree.idom["right"] == "entry"
        assert tree.idom["join"] == "entry"

    def test_dominates_is_reflexive(self):
        tree = DominatorTree(CFG(diamond()))
        for label in ("entry", "left", "right", "join"):
            assert tree.dominates(label, label)

    def test_entry_dominates_all(self):
        tree = DominatorTree(CFG(diamond()))
        for label in ("left", "right", "join"):
            assert tree.strictly_dominates("entry", label)

    def test_branch_does_not_dominate_join(self):
        tree = DominatorTree(CFG(diamond()))
        assert not tree.dominates("left", "join")

    def test_loop_idoms(self):
        tree = DominatorTree(CFG(loop_function()))
        assert tree.idom["header"] == "entry"
        assert tree.idom["body"] == "header"
        assert tree.idom["exit"] == "header"

    def test_dominators_of(self):
        tree = DominatorTree(CFG(loop_function()))
        assert tree.dominators_of("body") == {"entry", "header", "body"}

    def test_frontier_of_diamond(self):
        tree = DominatorTree(CFG(diamond()))
        frontier = tree.frontier()
        assert frontier["left"] == {"join"}
        assert frontier["right"] == {"join"}

    def test_frontier_of_loop_contains_header(self):
        tree = DominatorTree(CFG(loop_function()))
        assert "header" in tree.frontier()["body"]


class TestLoops:
    def test_simple_loop_detected(self):
        forest = LoopForest(CFG(loop_function()))
        loop = forest.loop_of("header")
        assert loop is not None
        assert loop.blocks == {"header", "body"}
        assert loop.latches == ["body"]

    def test_exit_edges(self):
        cfg = CFG(loop_function())
        loop = LoopForest(cfg).loop_of("header")
        assert loop.exit_edges(cfg) == [("header", "exit")]

    def test_nested_loops(self):
        forest = LoopForest(CFG(loop_function(nested=True)))
        outer = forest.loop_of("header")
        inner = forest.loop_of("inner")
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.blocks < outer.blocks
        assert outer.depth == 1 and inner.depth == 2

    def test_innermost_containing(self):
        forest = LoopForest(CFG(loop_function(nested=True)))
        assert forest.innermost_containing("inner").header == "inner"
        assert forest.innermost_containing("body").header == "header"
        assert forest.innermost_containing("entry") is None

    def test_top_level(self):
        forest = LoopForest(CFG(loop_function(nested=True)))
        assert [l.header for l in forest.top_level()] == ["header"]

    def test_no_loops_in_diamond(self):
        assert LoopForest(CFG(diamond())).loops == {}
