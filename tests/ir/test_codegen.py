"""Codegen kernel layer (vector backend): compile/memo mechanics plus
seeded-random property fuzzing against ``evalops``.

The second-generation backend compiles per-region Python kernels; their
contract is bit-identity with the tuple path, whose arithmetic *is*
``evalops``.  Three fuzz surfaces pin that down:

* classic ``_plain`` kernels called directly on randomized live-in
  registers against a literal evalops walk of the decoded region
  (including the ``INT64_MIN // -1`` wrap);
* whole randomized programs — guarded forward branches (so extended
  kernels both hit and miss their guards) and private loads/stores —
  under the ``vector`` vs ``tuples`` interpreter backends;
* randomized parallel TLS loops with scalar/memory wait-signal-check
  traffic and deliberately conflicting shared stores, so speculative
  store buffers fill, squash, and drain mid-kernel.

Every generator is seeded (``random.Random(seed)``) — failures replay.
"""

import pytest

from random import Random

from repro.ir import codegen, lower
from repro.ir.builder import ModuleBuilder
from repro.ir.decode import (
    OP_BINOP,
    OP_CONST,
    OP_DIVMOD,
    OP_FUSED,
    OP_FUSED2,
    OP_MOVE,
    OP_UNOP,
    DecodedProgram,
)
from repro.ir.evalops import BINOP_FUNCS
from repro.ir.interpreter import Interpreter, run_module
from repro.ir.module import ChannelInfo, ParallelLoop
from repro.ir.verifier import verify_module
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

#: Operand pool biased toward wrap boundaries, sign flips, and shift
#: counts around the word size.
FUZZ_VALUES = (
    INT64_MIN, INT64_MIN + 1, -(1 << 32), -97, -3, -2, -1, 0, 1, 2, 3,
    5, 63, 64, 65, 97, (1 << 31), (1 << 32), INT64_MAX - 1, INT64_MAX,
)

#: Binops legal in classic regions with arbitrary operands.
PURE_BINOPS = (
    "add", "sub", "mul", "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
)

#: Constant divisors for div/mod (register divisors break regions).
DIVISORS = (-7, -3, -1, 2, 3, 5, 64)


def _decoded(module):
    return DecodedProgram(module, addr_of=lambda name: 0)


# ---------------------------------------------------------------------------
# compile layer
# ---------------------------------------------------------------------------


class TestCompileLayer:
    def test_compile_is_memoized_by_source(self):
        source = "def k_plain(regs):\n    regs['x'] = regs['x'] + 1\n"
        codegen.clear_memo()
        codegen.reset_stats()
        first = codegen.compile_source(source, "t")
        second = codegen.compile_source(source, "t")
        assert first is second
        stats = codegen.compile_stats()
        assert stats["compiles"] == 1
        assert stats["memo_hits"] == 1
        assert stats["memo_size"] == 1

    def test_namespace_is_builtin_free(self):
        # Kernels may touch only their arguments (plus len/KeyError for
        # the extended kernels' hoists); any builtin leak must raise.
        namespace = codegen.compile_source(
            "def k():\n    return abs(-1)\n", "t"
        )
        assert namespace["__builtins__"] == {}
        with pytest.raises(NameError):
            namespace["k"]()

    def test_clear_memo_resets_footprint(self):
        codegen.compile_source("def k():\n    return 1\n", "t")
        assert codegen.compile_stats()["memo_size"] >= 1
        codegen.clear_memo()
        assert codegen.compile_stats()["memo_size"] == 0

    def test_schema_version_covers_second_generation(self):
        # Version 2 introduced wait/signal/check fusion and suffix
        # kernels; stored kernel artifacts key on this.
        assert codegen.CODEGEN_SCHEMA_VERSION >= 2
        assert lower.LOWER_SCHEMA_VERSION >= 3


# ---------------------------------------------------------------------------
# classic kernels vs a literal evalops walk
# ---------------------------------------------------------------------------


def _pure_soup_module(rng, seeds=6):
    """Entry seeds live-ins; ``work`` is one all-pure op soup + ret.

    Ending ``work`` with ``ret`` (an extended-region breaker) keeps the
    soup a single-span pure run, so lowering plants a *classic* region
    whose ``_plain`` kernel we can call directly.
    """
    mb = ModuleBuilder("fuzz")
    fb = mb.function("main")
    fb.block("entry")
    regs = []
    for k in range(seeds):
        fb.const(rng.choice(FUZZ_VALUES), dest=f"s{k}")
        regs.append(f"s{k}")
    fb.jump("work")
    fb.block("work")
    for k in range(rng.randrange(18, 36)):
        dest = f"t{k}"
        dice = rng.random()
        if dice < 0.15:
            fb.unop(rng.choice(("neg", "not")), rng.choice(regs), dest=dest)
        elif dice < 0.30:
            fb.binop(rng.choice(("div", "mod")), rng.choice(regs),
                     rng.choice(DIVISORS), dest=dest)
        else:
            rhs = (rng.choice(regs) if rng.random() < 0.7
                   else rng.choice(FUZZ_VALUES))
            fb.binop(rng.choice(PURE_BINOPS), rng.choice(regs), rhs,
                     dest=dest)
        regs.append(dest)
    acc = regs[-1]
    for name in regs[-8:]:
        acc = fb.binop("xor", acc, name)
    fb.ret(acc)
    module = mb.build()
    verify_module(module)
    return module


def _read(regs, operand):
    return regs[operand] if isinstance(operand, str) else operand


def _evalops_walk(ops, start, length, live_ins):
    """Reference execution of a pure decoded span straight off evalops.

    Decoded binop/unop tuples carry the evalops callables themselves
    (``op[4]``), so this walk *is* the evalops semantics.
    """
    regs = dict(live_ins)
    for op in ops[start:start + length]:
        code = op[0]
        if code == OP_CONST:
            regs[op[3]] = op[4]
        elif code == OP_MOVE:
            regs[op[3]] = _read(regs, op[4])
        elif code in (OP_BINOP, OP_DIVMOD):
            regs[op[3]] = op[4](_read(regs, op[5]), _read(regs, op[6]))
        elif code == OP_UNOP:
            regs[op[3]] = op[4](_read(regs, op[5]))
        else:  # pragma: no cover - generator emits pure ops only
            raise AssertionError(f"unexpected opcode {code} in pure region")
    return regs


class TestClassicKernelFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_plain_kernel_matches_evalops_on_random_live_ins(self, seed):
        rng = Random(seed)
        module = _pure_soup_module(rng)
        decoded = _decoded(module)
        block = lower.LoweredProgram(decoded).block("main", "work")
        fused = [op for op in block.ops if op[0] == OP_FUSED]
        assert fused, "pure soup must lower to a classic region"
        ops = decoded.function("main").blocks["work"].ops
        for superop in fused:
            region, fn_plain = superop[7], superop[6]
            for _ in range(8):
                live_ins = {
                    name: rng.choice(FUZZ_VALUES) for name in region.live_ins
                }
                got = dict(live_ins)
                fn_plain(got)
                want = _evalops_walk(
                    ops, region.start, region.length, live_ins
                )
                assert got == want

    def test_divmod_wrap_on_live_in_operand(self):
        # INT64_MIN // -1 wraps back to INT64_MIN (and mod to 0); the
        # kernel must reproduce the evalops wrap on a *live-in* operand
        # the constant folder cannot see.
        mb = ModuleBuilder("wrap")
        fb = mb.function("main")
        fb.block("entry")
        fb.const(INT64_MIN, dest="x")
        fb.jump("work")
        fb.block("work")
        fb.binop("div", "x", -1, dest="q")
        fb.binop("mod", "x", -1, dest="r")
        fb.binop("xor", "q", "r", dest="o")
        fb.ret("o")
        module = mb.build()
        block = lower.LoweredProgram(_decoded(module)).block("main", "work")
        superop = next(op for op in block.ops if op[0] == OP_FUSED)
        fn_plain = superop[6]
        for x in (INT64_MIN, INT64_MIN + 1, -1, 0, 7, INT64_MAX):
            regs = {"x": x}
            fn_plain(regs)
            assert regs["q"] == BINOP_FUNCS["div"](x, -1), x
            assert regs["r"] == BINOP_FUNCS["mod"](x, -1), x
        regs = {"x": INT64_MIN}
        fn_plain(regs)
        assert regs["q"] == INT64_MIN  # the wrap itself


# ---------------------------------------------------------------------------
# randomized guarded-branch + private-memory programs (interpreter)
# ---------------------------------------------------------------------------


def _branchy_memory_module(rng, chain=4, size=64):
    """A DAG of guarded blocks over random data with @buf loads/stores.

    All branches are forward (guaranteed termination); guard outcomes
    depend on fuzzed values, so the extended kernels' branch guards
    both hold and mispredict across seeds.  Addresses mix constant
    offsets with masked register arithmetic off the ``@buf`` global.
    """
    mb = ModuleBuilder("fuzz")
    mb.global_var("buf", size)
    fb = mb.function("main")
    fb.block("entry")
    # Seed registers are the only cross-block values: every block may
    # read them and may overwrite them (defined on every path), while
    # temporaries stay block-local — branches can skip whole blocks.
    seeds = []
    for k in range(5):
        fb.const(rng.choice(FUZZ_VALUES), dest=f"s{k}")
        seeds.append(f"s{k}")
    for _ in range(6):  # scatter initial data
        fb.store("@buf", rng.choice(seeds), offset=rng.randrange(size))
    fb.jump("b0")
    labels = [f"b{k}" for k in range(chain)] + ["done"]
    for i in range(chain):
        fb.block(labels[i])
        local = list(seeds)
        for _ in range(rng.randrange(4, 9)):
            rhs = (rng.choice(local) if rng.random() < 0.6
                   else rng.choice(FUZZ_VALUES))
            dest = rng.choice(seeds) if rng.random() < 0.3 else None
            value = fb.binop(rng.choice(PURE_BINOPS), rng.choice(local),
                             rhs, dest=dest)
            local.append(dest or value)
        if rng.random() < 0.5:  # constant-offset private access
            local.append(fb.load("@buf", offset=rng.randrange(size)))
        else:  # register-address access
            slot = fb.binop("and", rng.choice(local), size - 1)
            addr = fb.add("@buf", slot)
            local.append(fb.load(addr))
            if rng.random() < 0.5:
                fb.store(addr, rng.choice(local))
        cond = fb.binop(rng.choice(("lt", "eq", "gt", "le")),
                        rng.choice(local), rng.choice(local))
        on_false = rng.choice(labels[i + 1:])
        fb.condbr(cond, labels[i + 1], on_false)
    fb.block("done")
    slot = fb.binop("and", rng.choice(seeds), size - 1)
    out = fb.load(fb.add("@buf", slot))
    fb.ret(fb.binop("xor", out, rng.choice(seeds)))
    module = mb.build()
    verify_module(module)
    return module


class TestBranchyMemoryFuzz:
    @pytest.mark.parametrize("seed", range(10))
    def test_interpreter_vector_matches_tuples(self, seed):
        # Classic-region surface: the untimed interpreter's vector
        # backend runs ``_plain`` kernels between the memory ops.
        module = _branchy_memory_module(Random(seed))
        ref = run_module(module, backend="tuples")
        interp = Interpreter(module, backend="vector")
        got = interp.run()
        assert got.return_value == ref.return_value
        assert got.steps == ref.steps
        assert got.memory.checksum() == ref.memory.checksum()
        assert interp.fused_instructions > 0

    @pytest.mark.parametrize("seed", range(10))
    def test_engine_vector_matches_tuples(self, seed):
        # Extended-region surface: the sequential engine dispatches
        # OP_FUSED2 kernels whose branch guards hold on the lowered
        # path and mispredict (bail to per-op dispatch) off it.
        module = _branchy_memory_module(Random(seed))
        vec_engine, vec = _run_engine(module, "vector", parallel=False)
        ref_engine, ref = _run_engine(module, "tuples", parallel=False)
        assert vec_engine.backend == "vector"
        assert vec.to_state() == ref.to_state()
        assert vec_engine.instructions == ref_engine.instructions
        assert vec_engine.fused_regions > 0

    def test_extended_regions_cover_guarded_memory_paths(self):
        module = _branchy_memory_module(Random(1))
        program = lower.LoweredProgram(
            _decoded(module), extended=True, issue_width=4
        )
        codes = [
            op[0]
            for label in ("b0", "b1", "b2", "b3")
            for op in program.block("main", label).ops
        ]
        assert OP_FUSED2 in codes


# ---------------------------------------------------------------------------
# randomized parallel TLS loops (engine: wait/signal/check + drains)
# ---------------------------------------------------------------------------


def _parallel_fuzz_module(rng, iters=24, stride=None):
    """A forwarding-protocol loop with randomized body and conflicts.

    The ``mem:c`` channel forwards ``@counter`` (wait/check/select/
    resume consumer, store+signal producer); an *un-forwarded* random-
    stride read-modify-write over the tiny ``@shared`` array guarantees
    cross-epoch dependences, so epochs squash and their speculative
    store buffers drain mid-region.
    """
    if stride is None:
        stride = rng.choice((1, 3, 5, 7))
    mb = ModuleBuilder("pfuzz")
    mb.global_var("counter", 1, init=rng.randrange(1, 50))
    mb.global_var("shared", 8)
    mb.global_var("slots", iters * 8)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    fb.wait("scalar:i", dest="i")
    fb.add("i", 1, dest="i.fwd")
    fb.signal("scalar:i", "i.fwd")
    f_addr = fb.wait("mem:c", kind="addr")
    fb.check(f_addr, "@counter")
    f_val = fb.wait("mem:c", kind="value")
    m_val = fb.load("@counter")
    cur = fb.select(f_val, m_val)
    fb.resume()
    new = fb.add(cur, rng.randrange(1, 7))
    fb.store("@counter", new)
    fb.signal("mem:c", "@counter", kind="addr")
    fb.signal("mem:c", new, kind="value")
    slot = fb.mod(fb.mul("i", stride), 8)
    addr = fb.add("@shared", slot)
    fb.store(addr, fb.add(fb.load(addr), "i"))
    acc = fb.const(rng.randrange(1, 9))
    for k in range(rng.randrange(10, 24)):
        acc = fb.binop(rng.choice(("add", "xor", "mul", "sub", "and", "or")),
                       acc, rng.randrange(1, 13))
    fb.store(fb.add("@slots", fb.mul("i", 8)), fb.binop("xor", acc, cur))
    fb.move("i.fwd", dest="i")
    cond = fb.binop("lt", "i", iters)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    fb.ret(fb.load("@counter"))
    module = mb.build()
    module.parallel_loops.append(
        ParallelLoop(
            function="main",
            header="loop",
            scalar_channels=["scalar:i"],
            mem_channels=["mem:c"],
        )
    )
    module.add_channel(ChannelInfo(name="scalar:i", kind="scalar", scalar="i"))
    module.add_channel(ChannelInfo(name="mem:c", kind="mem"))
    verify_module(module)
    return module


def _run_engine(module, backend, parallel=True):
    engine = TLSEngine(
        module, config=SimConfig(backend=backend), parallel=parallel
    )
    result = engine.run()
    return engine, result


class TestParallelEngineFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_vector_matches_tuples_under_speculation(self, seed):
        module = _parallel_fuzz_module(Random(seed))
        vec_engine, vec = _run_engine(module, "vector")
        ref_engine, ref = _run_engine(module, "tuples")
        assert vec_engine.backend == "vector"
        assert vec.to_state() == ref.to_state()
        assert vec_engine.instructions == ref_engine.instructions
        assert vec_engine.fused_regions > 0

    def test_store_buffer_drain_path_is_exercised(self):
        # stride 1 writes every epoch into the same @shared cells, so
        # violations (and thus mid-region store-buffer drains) are
        # guaranteed, not just likely.
        module = _parallel_fuzz_module(Random(3), stride=1)
        vec_engine, vec = _run_engine(module, "vector")
        _, ref = _run_engine(module, "tuples")
        assert vec.total_violations() > 0
        assert vec.to_state() == ref.to_state()
        assert vec_engine.fused_regions > 0
