"""Liveness, reaching definitions, and the later-defs placement query."""

from repro.ir.builder import ModuleBuilder
from repro.ir.cfg import CFG
from repro.ir.dataflow import (
    blocks_with_later_defs,
    live_in,
    live_out,
    reaching_definitions,
)
from repro.ir.instructions import Store
from repro.ir.operands import Reg


def build_branchy():
    """x defined at entry, redefined on one branch, used at join."""
    mb = ModuleBuilder()
    fb = mb.function("f", ["c"])
    fb.block("entry")
    fb.const(1, dest="x")
    fb.condbr("c", "redef", "keep")
    fb.block("redef")
    fb.const(2, dest="x")
    fb.jump("join")
    fb.block("keep")
    fb.jump("join")
    fb.block("join")
    fb.add("x", 0, dest="y")
    fb.ret("y")
    return mb.module.function("f")


class TestLiveness:
    def test_live_at_join(self):
        cfg = CFG(build_branchy())
        assert Reg("x") in live_in(cfg)["join"]
        assert Reg("x") in live_out(cfg)["keep"]

    def test_dead_after_last_use(self):
        cfg = CFG(build_branchy())
        assert Reg("x") not in live_out(cfg)["join"]
        assert Reg("y") not in live_in(cfg)["join"]

    def test_condition_live_at_entry(self):
        cfg = CFG(build_branchy())
        assert Reg("c") in live_in(cfg)["entry"]

    def test_loop_carried_register_live_at_header(self):
        mb = ModuleBuilder()
        fb = mb.function("f", ["n"])
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("header")
        fb.block("header")
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", "n")
        fb.condbr(c, "header", "exit")
        fb.block("exit")
        fb.ret("i")
        cfg = CFG(mb.module.function("f"))
        assert Reg("i") in live_in(cfg)["header"]


class TestReachingDefs:
    def test_both_defs_reach_join(self):
        cfg = CFG(build_branchy())
        state = reaching_definitions(cfg)
        join_regs = {(reg, iid) for reg, iid in state["join"]["in"] if reg == Reg("x")}
        assert len(join_regs) == 2

    def test_redef_kills_in_block(self):
        cfg = CFG(build_branchy())
        state = reaching_definitions(cfg)
        redef_out = [d for d in state["redef"]["out"] if d[0] == Reg("x")]
        assert len(redef_out) == 1

    def test_params_reach_entry(self):
        cfg = CFG(build_branchy())
        state = reaching_definitions(cfg)
        assert (Reg("c"), -1) in state["entry"]["in"]


class TestBlocksWithLaterDefs:
    def build_loop_with_stores(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("f", ["n", "c"])
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("header")
        fb.block("header")
        fb.store("@g", "i")  # early store
        fb.condbr("c", "then", "latch")
        fb.block("then")
        fb.store("@g", "c")  # later store on one path
        fb.jump("latch")
        fb.block("latch")
        fb.add("i", 1, dest="i")
        cond = fb.binop("lt", "i", "n")
        fb.condbr(cond, "header", "exit")
        fb.block("exit")
        fb.ret("i")
        return mb.module.function("f")

    def test_header_has_later_defs_via_then(self):
        function = self.build_loop_with_stores()
        cfg = CFG(function)
        region = {"header", "then", "latch"}
        later = blocks_with_later_defs(
            cfg,
            lambda i: isinstance(i, Store),
            region,
            exclude_edges=[("latch", "header")],
        )
        # From header's exit, the store in `then` is still reachable.
        assert "header" in later
        # From then/latch, no further store this epoch.
        assert "then" not in later
        assert "latch" not in later

    def test_backedge_exclusion_matters(self):
        function = self.build_loop_with_stores()
        cfg = CFG(function)
        region = {"header", "then", "latch"}
        later = blocks_with_later_defs(
            cfg, lambda i: isinstance(i, Store), region
        )
        # Without excluding the backedge, every block can reach a store.
        assert later == region


class DominatorProblem:
    """Forward must-analysis whose fixed point is the dominator sets —
    cross-checked against the Cooper-Harvey-Kennedy tree to validate
    the generic solver's must/meet machinery."""

    direction = "forward"
    meet = "intersection"

    def __init__(self, cfg):
        self._cfg = cfg

    def boundary(self, cfg):
        return set()

    def initial(self, cfg):
        return set(cfg.reachable)

    def transfer(self, block, facts):
        return set(facts) | {block.label}


class TestGenericSolverAgainstDominators:
    def test_dataflow_dominators_match_chk(self):
        from repro.ir.dataflow import solve
        from repro.ir.dominators import DominatorTree
        from tests.ir.test_cfg_dominators_loops import loop_function

        cfg = CFG(loop_function(nested=True))
        state = solve(DominatorProblem(cfg), cfg)
        tree = DominatorTree(cfg)
        for label in cfg.reachable:
            assert state[label]["out"] == tree.dominators_of(label), label
