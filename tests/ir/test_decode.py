"""Decode pass: opcode layout, operand lowering, pure-chunk table."""

from repro.ir.builder import ModuleBuilder
from repro.ir.operands import GlobalRef
from repro.ir.decode import (
    MAX_PRIVATE_OPCODE,
    OP_BINOP,
    OP_CALL,
    OP_CHECK,
    OP_CONDBR,
    OP_DIVMOD,
    OP_JUMP,
    OP_LOAD,
    OP_RET,
    OP_SIGNAL,
    OP_STORE,
    OP_WAIT,
    PURE_OPCODES,
    DecodedProgram,
)

#: opcodes the TLS scheduler must order globally (shared state)
SHARED_OPCODES = (OP_LOAD, OP_STORE, OP_WAIT, OP_SIGNAL, OP_CHECK)
#: private control flow: invisible to other epochs but ends a chunk
CONTROL_OPCODES = (OP_CALL, OP_RET, OP_JUMP, OP_CONDBR)


def _decode(mb: ModuleBuilder, addrs=None) -> DecodedProgram:
    addrs = addrs or {}
    return DecodedProgram(mb.build(), addr_of=lambda name: addrs[name])


def _mixed_program() -> DecodedProgram:
    """A function mixing pure runs with every ordering-relevant class."""
    mb = ModuleBuilder("t")
    fb = mb.function("main")
    fb.block("entry")
    base = fb.alloc(4, dest="base")
    a = fb.const(7, dest="a")
    b = fb.add(a, 1, dest="b")
    fb.mul(a, b, dest="c")
    v = fb.load(base, dest="v")
    d = fb.add(v, 1, dest="d")
    fb.div(d, b, dest="e")
    fb.store(base, d)
    fb.signal("ch", d)
    w = fb.wait("ch", dest="w")
    fb.select(w, d, dest="s")
    fb.check(base, base)
    fb.call("helper", (b,), dest="r")
    fb.condbr("r", "mid", "mid")
    fb.block("mid")
    fb.add("r", "s", dest="t")
    fb.jump("exit")
    fb.block("exit")
    fb.sub("r", 1, dest="z")
    fb.ret("z")
    hb = mb.function("helper", params=("x",))
    hb.block("entry")
    hb.ret("x")
    return _decode(mb)


class TestOpcodeLayout:
    def test_pure_opcodes_are_private(self):
        assert all(code <= MAX_PRIVATE_OPCODE for code in PURE_OPCODES)

    def test_private_boundary_is_condbr(self):
        assert MAX_PRIVATE_OPCODE == OP_CONDBR

    def test_shared_opcodes_above_boundary(self):
        # The engine's free-running loop relies on a single integer
        # comparison classifying every instruction.
        for code in SHARED_OPCODES:
            assert code > MAX_PRIVATE_OPCODE

    def test_control_opcodes_private_but_not_pure(self):
        for code in CONTROL_OPCODES:
            assert code <= MAX_PRIVATE_OPCODE
            assert code not in PURE_OPCODES


class TestLowering:
    def test_div_and_mod_get_faulting_opcode(self):
        mb = ModuleBuilder("t")
        fb = mb.function("main")
        fb.block("entry")
        a = fb.const(6, dest="a")
        fb.add(a, 2, dest="b")
        fb.div(a, "b", dest="q")
        fb.mod(a, "b", dest="r")
        fb.ret("q")
        block = _decode(mb).block("main", "entry")
        codes = [op[0] for op in block.ops]
        assert codes.count(OP_DIVMOD) == 2
        assert codes.count(OP_BINOP) == 1

    def test_operand_encoding(self):
        # int = compile-time-known value, str = register name.
        mb = ModuleBuilder("t")
        mb.global_var("g", 8)
        fb = mb.function("main")
        fb.block("entry")
        fb.load(GlobalRef("g"), offset=2, dest="v")
        fb.add("v", 5, dest="w")
        fb.ret("w")
        block = _decode(mb, addrs={"g": 4096}).block("main", "entry")
        load, add, _ret = block.ops
        assert load[0] == OP_LOAD and load[4] == 4096 and load[5] == 2
        assert add[5] == "v" and add[6] == 5

    def test_missing_callee_defers_to_runtime(self):
        mb = ModuleBuilder("t")
        fb = mb.function("main")
        fb.block("entry")
        fb.call("nowhere", (), dest="r")
        fb.ret("r")
        call = _decode(mb).block("main", "entry").ops[0]
        assert call[0] == OP_CALL
        assert call[6] is None and call[7] is None


class TestChunkTable:
    """``chunk_end`` delimits maximal pure runs and nothing more."""

    def test_chunks_never_cross_ordering_boundaries(self):
        program = _mixed_program()
        checked = 0
        for fn in ("main", "helper"):
            for block in program.function(fn).blocks.values():
                ops, chunk_end = block.ops, block.chunk_end
                for i, op in enumerate(ops):
                    if op[0] in PURE_OPCODES:
                        end = chunk_end[i]
                        assert i < end <= len(ops)
                        # everything inside the chunk is pure ...
                        assert all(
                            ops[j][0] in PURE_OPCODES for j in range(i, end)
                        )
                        # ... and the chunk is maximal: it stops only at
                        # the block end or an ordering-relevant op.
                        if end < len(ops):
                            assert ops[end][0] not in PURE_OPCODES
                    else:
                        # loads, stores, sync and branches end a chunk
                        # at themselves: batching never crosses them.
                        assert chunk_end[i] == i
                        checked += 1
        assert checked >= len(SHARED_OPCODES) + len(CONTROL_OPCODES)

    def test_every_boundary_class_present_in_fixture(self):
        # Guard the test above against a fixture refactor silently
        # dropping an instruction class.
        program = _mixed_program()
        seen = set()
        for fn in ("main", "helper"):
            for block in program.function(fn).blocks.values():
                seen |= {op[0] for op in block.ops}
        for code in SHARED_OPCODES + CONTROL_OPCODES:
            assert code in seen
