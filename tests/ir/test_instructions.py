"""Instruction classes: defs/uses, validation, terminator flags."""

import pytest

from repro.ir.instructions import (
    BINARY_OPS,
    UNARY_OPS,
    Alloc,
    BinOp,
    Call,
    Check,
    CondBr,
    Const,
    Jump,
    Load,
    Move,
    Resume,
    Ret,
    Select,
    Signal,
    Store,
    UnOp,
    Wait,
)
from repro.ir.operands import GlobalRef, Imm, Reg


class TestDefsUses:
    def test_const(self):
        instr = Const(Reg("d"), 7)
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == []

    def test_move(self):
        instr = Move(Reg("d"), Reg("s"))
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == [Reg("s")]

    def test_move_of_imm_has_no_uses(self):
        assert Move(Reg("d"), Imm(1)).uses() == []

    def test_binop(self):
        instr = BinOp(Reg("d"), "add", Reg("a"), Reg("b"))
        assert instr.defs() == [Reg("d")]
        assert set(instr.uses()) == {Reg("a"), Reg("b")}

    def test_binop_with_imm(self):
        instr = BinOp(Reg("d"), "add", Reg("a"), Imm(1))
        assert instr.uses() == [Reg("a")]

    def test_unop(self):
        instr = UnOp(Reg("d"), "neg", Reg("a"))
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == [Reg("a")]

    def test_load(self):
        instr = Load(Reg("d"), Reg("p"), offset=2)
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == [Reg("p")]
        assert instr.offset == 2

    def test_load_from_global(self):
        instr = Load(Reg("d"), GlobalRef("g"))
        assert instr.uses() == []
        assert instr.operands() == [GlobalRef("g")]

    def test_store(self):
        instr = Store(Reg("p"), Reg("v"))
        assert instr.defs() == []
        assert set(instr.uses()) == {Reg("p"), Reg("v")}

    def test_alloc(self):
        instr = Alloc(Reg("d"), Reg("n"))
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == [Reg("n")]

    def test_call_with_dest(self):
        instr = Call(Reg("d"), "f", [Reg("a"), Imm(2)])
        assert instr.defs() == [Reg("d")]
        assert instr.uses() == [Reg("a")]

    def test_void_call(self):
        instr = Call(None, "f", [])
        assert instr.defs() == []

    def test_ret_value(self):
        assert Ret(Reg("v")).uses() == [Reg("v")]
        assert Ret().uses() == []

    def test_wait(self):
        instr = Wait(Reg("d"), "ch")
        assert instr.defs() == [Reg("d")]
        assert instr.kind == "value"

    def test_signal(self):
        instr = Signal("ch", Reg("v"), kind="addr")
        assert instr.uses() == [Reg("v")]
        assert instr.kind == "addr"

    def test_check(self):
        instr = Check(Reg("fa"), Reg("ma"), offset=1)
        assert set(instr.uses()) == {Reg("fa"), Reg("ma")}

    def test_select(self):
        instr = Select(Reg("d"), Reg("f"), Reg("m"))
        assert instr.defs() == [Reg("d")]
        assert set(instr.uses()) == {Reg("f"), Reg("m")}

    def test_resume(self):
        instr = Resume()
        assert instr.defs() == [] and instr.uses() == []


class TestTerminators:
    def test_terminator_flags(self):
        assert Jump("b").is_terminator
        assert CondBr(Reg("c"), "a", "b").is_terminator
        assert Ret().is_terminator
        assert not Const(Reg("d"), 0).is_terminator
        assert not Call(None, "f", []).is_terminator

    def test_targets(self):
        assert Jump("x").targets() == ["x"]
        assert CondBr(Reg("c"), "a", "b").targets() == ["a", "b"]


class TestValidation:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp(Reg("d"), "bogus", Reg("a"), Reg("b"))

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            UnOp(Reg("d"), "bogus", Reg("a"))

    def test_const_dest_must_be_reg(self):
        with pytest.raises(TypeError):
            Const(Imm(1), 2)

    def test_wait_kind_validated(self):
        with pytest.raises(ValueError):
            Wait(Reg("d"), "ch", kind="bogus")

    def test_signal_kind_validated(self):
        with pytest.raises(ValueError):
            Signal("ch", Reg("v"), kind="bogus")

    def test_all_binary_ops_constructible(self):
        for op in BINARY_OPS:
            BinOp(Reg("d"), op, Reg("a"), Reg("b"))

    def test_all_unary_ops_constructible(self):
        for op in UNARY_OPS:
            UnOp(Reg("d"), op, Reg("a"))
