"""Reference interpreter: semantics, hooks, region/epoch tracking."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import (
    Hooks,
    Interpreter,
    InterpreterError,
    eval_binop,
    eval_unop,
    run_module,
)
from repro.ir.memimage import NullDereference
from repro.ir.module import ParallelLoop


class TestEvalBinop:
    def test_basic_arithmetic(self):
        assert eval_binop("add", 2, 3) == 5
        assert eval_binop("sub", 2, 3) == -1
        assert eval_binop("mul", -4, 3) == -12

    def test_division_truncates_toward_zero(self):
        assert eval_binop("div", 7, 2) == 3
        assert eval_binop("div", -7, 2) == -3
        assert eval_binop("div", 7, -2) == -3

    def test_mod_sign_follows_dividend(self):
        assert eval_binop("mod", 7, 3) == 1
        assert eval_binop("mod", -7, 3) == -1
        assert eval_binop("mod", 7, -3) == 1

    def test_division_exact_for_huge_magnitudes(self):
        # Regression: float-based truncation lost precision above 2^53.
        big = -3103311621539391012
        assert eval_binop("mod", big, 7) == big - (-(-big // 7)) * 7
        assert -7 < eval_binop("mod", big, 7) <= 0

    def test_div_mod_identity(self):
        for lhs in (-(10**18), -13, -1, 1, 13, 10**18):
            for rhs in (-7, -2, 2, 7):
                q = eval_binop("div", lhs, rhs)
                r = eval_binop("mod", lhs, rhs)
                assert q * rhs + r == lhs

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            eval_binop("div", 1, 0)
        with pytest.raises(InterpreterError):
            eval_binop("mod", 1, 0)

    def test_wrapping_at_64_bits(self):
        top = (1 << 63) - 1
        assert eval_binop("add", top, 1) == -(1 << 63)

    def test_comparisons_return_0_or_1(self):
        assert eval_binop("lt", 1, 2) == 1
        assert eval_binop("ge", 1, 2) == 0
        assert eval_binop("eq", 5, 5) == 1
        assert eval_binop("ne", 5, 5) == 0

    def test_shifts_mask_the_count(self):
        assert eval_binop("shl", 1, 64) == 1  # count masked to 0
        assert eval_binop("shr", 8, 2) == 2

    def test_min_max(self):
        assert eval_binop("min", 3, -5) == -5
        assert eval_binop("max", 3, -5) == 3

    def test_unops(self):
        assert eval_unop("neg", 5) == -5
        assert eval_unop("not", 0) == 1
        assert eval_unop("not", 9) == 0


def build_sum_loop(n=10, parallel=False):
    mb = ModuleBuilder()
    mb.global_var("acc", 1)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    v = fb.load("@acc")
    v2 = fb.add(v, "i")
    fb.store("@acc", v2)
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", n)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    r = fb.load("@acc")
    fb.ret(r)
    module = mb.build()
    if parallel:
        module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
    return module


class TestExecution:
    def test_sum_loop(self):
        assert run_module(build_sum_loop(10)).return_value == 45

    def test_calls_and_returns(self):
        mb = ModuleBuilder()
        fb = mb.function("double", ["x"])
        fb.block("entry")
        d = fb.mul("x", 2)
        fb.ret(d)
        fb = mb.function("main")
        fb.block("entry")
        r = fb.call("double", [21])
        fb.ret(r)
        assert run_module(mb.build()).return_value == 42

    def test_void_call(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("poke", [])
        fb.block("entry")
        fb.store("@g", 9)
        fb.ret()
        fb = mb.function("main")
        fb.block("entry")
        fb.call("poke", [], dest=False)
        r = fb.load("@g")
        fb.ret(r)
        assert run_module(mb.build()).return_value == 9

    def test_undefined_register_rejected(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.add("ghost", 1)
        fb.ret(0)
        with pytest.raises(InterpreterError, match="undefined register"):
            run_module(mb.build())

    def test_fuel_exhaustion(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.jump("spin")
        fb.block("spin")
        fb.jump("spin")
        with pytest.raises(InterpreterError, match="fuel"):
            run_module(mb.build(), fuel=100)

    def test_null_dereference(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        z = fb.const(0)
        fb.load(z)
        fb.ret(0)
        with pytest.raises(NullDereference):
            run_module(mb.build())

    def test_alloc(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        p = fb.alloc(4)
        fb.store(p, 11, offset=3)
        r = fb.load(p, offset=3)
        fb.ret(r)
        assert run_module(mb.build()).return_value == 11

    def test_wrong_arg_count_rejected(self):
        module = build_sum_loop()
        with pytest.raises(InterpreterError):
            Interpreter(module).run(args=(1,))


class RecordingHooks(Hooks):
    def __init__(self):
        self.loads = []
        self.stores = []
        self.epochs = []
        self.regions = []

    def on_load(self, instr, stack, addr, value, epoch):
        self.loads.append((stack, addr, value, epoch))

    def on_store(self, instr, stack, addr, value, epoch):
        self.stores.append((stack, addr, value, epoch))

    def on_epoch_start(self, epoch):
        self.epochs.append(epoch)

    def on_region_enter(self, function, header, instance):
        self.regions.append(("enter", function, header, instance))

    def on_region_exit(self, function, header, epochs):
        self.regions.append(("exit", function, header, epochs))


class TestRegionTracking:
    def test_epoch_indices(self):
        hooks = RecordingHooks()
        Interpreter(build_sum_loop(5, parallel=True), hooks=hooks).run()
        assert hooks.epochs == [0, 1, 2, 3, 4]
        assert hooks.regions[0][:3] == ("enter", "main", "loop")
        assert hooks.regions[-1] == ("exit", "main", "loop", 5)

    def test_loads_tagged_with_epoch(self):
        hooks = RecordingHooks()
        Interpreter(build_sum_loop(3, parallel=True), hooks=hooks).run()
        in_region = [l for l in hooks.loads if l[3] is not None]
        assert [l[3] for l in in_region] == [0, 1, 2]

    def test_region_exit_count_in_result(self):
        result = Interpreter(build_sum_loop(7, parallel=True)).run()
        assert result.epochs_per_region[("main", "loop")] == 7

    def test_call_stack_context(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("touch", [])
        fb.block("entry")
        v = fb.load("@g")
        fb.store("@g", v)
        fb.ret()
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.call("touch", [], dest=False)
        fb.add("i", 1, dest="i")
        c = fb.binop("lt", "i", 2)
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret(0)
        module = mb.build()
        module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
        hooks = RecordingHooks()
        Interpreter(module, hooks=hooks).run()
        region_loads = [l for l in hooks.loads if l[3] is not None]
        assert region_loads, "expected loads inside the region"
        for stack, _addr, _value, _epoch in region_loads:
            assert len(stack) == 1  # one call frame below the loop

    def test_parallel_annotation_on_non_loop_rejected(self):
        module = build_sum_loop()
        module.parallel_loops.append(ParallelLoop(function="main", header="done"))
        with pytest.raises(InterpreterError):
            Interpreter(module)


class TestTransformedEquivalence:
    def test_wait_preserves_register(self):
        """Sequential wait semantics keep the scalar's previous value."""
        module = build_sum_loop(6, parallel=True)
        from repro.compiler.scalar_sync import insert_all_scalar_sync

        reference = run_module(build_sum_loop(6)).return_value
        insert_all_scalar_sync(module)
        assert run_module(module).return_value == reference

    def test_select_takes_memory_value(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1, init=5)
        fb = mb.function("main")
        fb.block("entry")
        f_val = fb.wait("mem:x", kind="value")
        m_val = fb.load("@g")
        fb.check(f_val, "@g")
        r = fb.select(f_val, m_val)
        fb.resume()
        fb.ret(r)
        module = mb.build()
        from repro.ir.module import ChannelInfo

        module.add_channel(ChannelInfo(name="mem:x", kind="mem"))
        assert run_module(module).return_value == 5
