"""Region lowering (vector backend): codegen identity, segmentation,
fallback behaviour, persistence, and the backend selection surface.

The contract under test is invisibility: the fused superops emitted by
``repro.ir.lower`` must be bit-identical to the per-tuple path — same
results, same step counts, same diagnostics at the same step — and
every way the backend can be unavailable must degrade to ``tuples``
loudly (``backend_fallback`` counter) but correctly.
"""

import pytest

from repro.ir import kernels
from repro.ir import lower
from repro.ir.builder import ModuleBuilder
from repro.ir.decode import OP_FUSED, DecodedProgram
from repro.ir.evalops import BINOP_FUNCS, UNOP_FUNCS
from repro.ir.interpreter import Interpreter, InterpreterError, run_module
from repro.obs.registry import process_registry

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

#: Edge-heavy operand sweep: wrap boundaries, signs, shift counts.
VALUES = (
    INT64_MIN, INT64_MIN + 1, -(1 << 32), -97, -2, -1, 0, 1, 2, 3,
    63, 64, 65, 97, (1 << 32), INT64_MAX - 1, INT64_MAX,
)


def _eval_template(expr: str, **bindings):
    namespace = {"__builtins__": {}}
    namespace.update(bindings)
    return eval(expr, namespace)


class TestCodegenIdentity:
    """Generated expressions must mirror evalops bit for bit."""

    @pytest.mark.parametrize("opname", sorted(lower._BINOP_TEMPLATES))
    def test_binop_templates_match_evalops(self, opname):
        template = lower._BINOP_TEMPLATES[opname]
        reference = BINOP_FUNCS[opname]
        for a in VALUES:
            for b in VALUES:
                got = _eval_template(template("a", "b"), a=a, b=b)
                assert got == reference(a, b), f"{opname}({a}, {b})"

    @pytest.mark.parametrize("opname", sorted(lower._UNOP_TEMPLATES))
    def test_unop_templates_match_evalops(self, opname):
        template = lower._UNOP_TEMPLATES[opname]
        reference = UNOP_FUNCS[opname]
        for a in VALUES:
            got = _eval_template(template("a"), a=a)
            assert got == reference(a), f"{opname}({a})"

    @pytest.mark.parametrize("divisor", (-7, -3, -1, 1, 2, 3, 7, 64))
    def test_trunc_div_expr_matches_evalops(self, divisor):
        # The quotient expression pre-wrap must equal _trunc_div; the
        # wrapped forms equal div/mod (incl. the INT64_MIN // -1 wrap).
        expr = lower._trunc_div_expr("a", divisor)
        for a in VALUES:
            div = _eval_template(lower._wrap_expr(expr), a=a)
            assert div == BINOP_FUNCS["div"](a, divisor), f"{a} div {divisor}"
            mod_expr = lower._wrap_expr(
                f"a - {expr} * {lower._atom(divisor)}"
            )
            mod = _eval_template(mod_expr, a=a)
            assert mod == BINOP_FUNCS["mod"](a, divisor), f"{a} mod {divisor}"


class TestSegmentation:
    def test_fusible_runs_basic(self):
        codes = [0, 1, 9, 0, 0, 0, 9, 0]
        runs = kernels.fusible_runs(codes, frozenset((0, 1)), 2)
        assert runs == [(0, 2), (3, 6)]

    def test_fusible_runs_min_len_filters_singletons(self):
        codes = [0, 9, 0, 9, 0, 0]
        assert kernels.fusible_runs(codes, frozenset((0,)), 2) == [(4, 6)]

    def test_fusible_runs_python_fallback_matches(self, monkeypatch):
        codes = [0, 1, 9, 0, 0, 0, 9, 0, 0]
        with_numpy = kernels.fusible_runs(codes, frozenset((0, 1)), 2)
        monkeypatch.setattr(kernels, "_np", None)
        without = kernels.fusible_runs(codes, frozenset((0, 1)), 2)
        assert with_numpy == without

    def test_clock_offsets_python_fallback_matches(self, monkeypatch):
        dts = [0.25, 0.5, 1.0, 0.25, 2.0]
        with_numpy = kernels.clock_offsets(dts)
        monkeypatch.setattr(kernels, "_np", None)
        assert kernels.clock_offsets(dts) == with_numpy
        assert with_numpy[0][0] == 0.0

    def test_divmod_constant_divisor_fuses(self):
        program = _decoded(_divmod_module(divisor=3))
        block = lower.LoweredProgram(program).block("work", "entry")
        assert any(op[0] == OP_FUSED for op in block.ops)

    def test_divmod_register_divisor_breaks_region(self):
        from repro.ir.decode import OP_DIVMOD

        program = _decoded(_divmod_module(divisor=None))
        block = lower.LoweredProgram(program).block("work", "entry")
        codes = [op[0] for op in block.ops]
        assert OP_DIVMOD in codes
        divmod_at = codes.index(OP_DIVMOD)
        # A register-divisor div can fault, so no region may span it.
        for region in lower.block_regions(block):
            assert not (region.start <= divmod_at
                        < region.start + region.length)

    def test_dyadic_gate(self):
        assert kernels.dyadic_exact(4, (1.0, 2.0, 12.0))
        assert not kernels.dyadic_exact(3, (1.0, 2.0))
        assert not kernels.dyadic_exact(4, (1.5,))


def _arith_module(n=50):
    """A loop whose body is one long fusible run (plus the backedge)."""
    mb = ModuleBuilder("t")
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.const(0, dest="acc")
    fb.jump("loop")
    fb.block("loop")
    fb.mul("i", 3, dest="a")
    fb.add("a", 7, dest="b")
    fb.div("b", 5, dest="q")
    fb.mod("b", 5, dest="r")
    fb.binop("xor", "q", "r", dest="x")
    fb.add("acc", "x", dest="acc")
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", n)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    fb.ret("acc")
    return mb.build()


def _mem_loop_module(n=40):
    """A loop whose body mixes pure runs with a load and a store.

    The sites make the block an extended region with mid-path resume
    points, so lowering plants suffix kernels at the load index and at
    the store index / store index + 1.
    """
    mb = ModuleBuilder("t")
    mb.global_var("buf", 8)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    fb.mul("i", 3, dest="a")
    fb.add("a", 7, dest="b")
    fb.load("@buf", offset=3, dest="v")
    fb.binop("xor", "b", "v", dest="c")
    fb.add("c", 1, dest="c2")
    fb.store("@buf", "c2", offset=3)
    fb.add("c2", 5, dest="d")
    fb.binop("and", "d", 255, dest="e")
    fb.add("i", 1, dest="i")
    cond = fb.binop("lt", "i", n)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    fb.ret(fb.load("@buf", offset=3))
    return mb.build()


def _divmod_module(divisor):
    mb = ModuleBuilder("t")
    fb = mb.function("work", params=("x",))
    fb.block("entry")
    if divisor is None:
        fb.const(3, dest="d")
        fb.div("x", "d", dest="q")   # register divisor: not fusible
    else:
        fb.div("x", divisor, dest="q")
    fb.add("q", 1, dest="y")
    fb.ret("y")
    fb2 = mb.function("main")
    fb2.block("entry")
    r = fb2.call("work", (INT64_MIN,), dest="r")
    fb2.ret(r)
    return mb.build()


def _decoded(module):
    return DecodedProgram(module, addr_of=lambda name: 0)


class TestInterpreterBackend:
    def test_vector_matches_tuples(self):
        module = _arith_module()
        ref = run_module(module, backend="tuples")
        interp = Interpreter(module, backend="vector")
        got = interp.run()
        assert got.return_value == ref.return_value
        assert got.steps == ref.steps
        assert interp.fused_instructions > 0

    def test_divmod_wrap_inside_region(self):
        # INT64_MIN / -1 wraps back to INT64_MIN; the fused kernel must
        # reproduce the evalops wrap on a live-in (non-folded) operand.
        module = _divmod_module(divisor=-1)
        ref = run_module(module, backend="tuples")
        got = run_module(module, backend="vector")
        assert got.return_value == ref.return_value == INT64_MIN + 1

    def test_fuel_exhaustion_identical_diagnostic(self):
        module = _arith_module(n=10_000)
        with pytest.raises(InterpreterError) as slow:
            run_module(module, backend="tuples", fuel=777)
        with pytest.raises(InterpreterError) as fast:
            run_module(module, backend="vector", fuel=777)
        assert str(fast.value) == str(slow.value)

    def test_undefined_register_identical_diagnostic(self):
        mb = ModuleBuilder("t")
        fb = mb.function("main")
        fb.block("entry")
        fb.add("ghost", 1, dest="a")
        fb.add("a", 2, dest="b")
        fb.ret("b")
        module = mb.build()
        with pytest.raises(InterpreterError) as slow:
            run_module(module, backend="tuples")
        with pytest.raises(InterpreterError) as fast:
            run_module(module, backend="vector")
        assert "undefined register" in str(slow.value)
        assert str(fast.value) == str(slow.value)

    def test_unknown_backend_rejected(self):
        with pytest.raises(InterpreterError, match="valid backends"):
            Interpreter(_arith_module(), backend="bogus")


class TestBackendGate:
    def test_unknown_simconfig_backend_rejected(self):
        from repro.tlssim.config import SimConfig

        with pytest.raises(ValueError, match="valid backends"):
            SimConfig(backend="bogus")

    def test_non_dyadic_cost_model_unavailable(self):
        from repro.tlssim.config import SimConfig

        assert lower.unavailable_reason(SimConfig()) is None
        reason = lower.unavailable_reason(SimConfig(issue_width=3))
        assert reason is not None and "dyadic" in reason

    def test_numpy_missing_falls_back_with_counter(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        assert lower.unavailable_reason() == "numpy unavailable"
        module = _arith_module()
        decoded = _decoded(module)
        assert lower.lowered_for(decoded, None) is None
        counter = process_registry().counter(
            "backend_fallback", reason="numpy unavailable"
        )
        before = counter.value
        ref = run_module(module, backend="tuples")
        got = run_module(module, backend="vector")  # silently degrades
        assert got.return_value == ref.return_value
        assert got.steps == ref.steps
        assert counter.value == before + 1

    def test_engine_selects_and_falls_back(self):
        from repro.experiments.runner import bundle_for, config_for
        from repro.tlssim.engine import TLSEngine

        bundle = bundle_for("go")
        program = bundle.program("U")
        vector = config_for("U").with_mode(backend="vector")
        engine = TLSEngine(program, config=vector, parallel=True)
        got = engine.run()
        assert engine.backend == "vector"
        assert engine.fused_instructions > 0
        ref = TLSEngine(
            program, config=vector.with_mode(backend="tuples"), parallel=True
        ).run()
        assert got.to_state() == ref.to_state()
        # A non-dyadic cost model (issue width 3) refuses to lower and
        # degrades to the tuple path with identical results.
        counter = process_registry().counter(
            "backend_fallback", reason="cost model off the dyadic grid"
        )
        before = counter.value
        odd = vector.with_mode(issue_width=3)
        fallback_engine = TLSEngine(program, config=odd, parallel=True)
        fallback = fallback_engine.run()
        assert fallback_engine.backend == "tuples"
        assert fallback_engine.fused_instructions == 0
        assert counter.value == before + 1
        odd_ref = TLSEngine(
            program, config=odd.with_mode(backend="tuples"), parallel=True
        ).run()
        assert fallback.to_state() == odd_ref.to_state()


class TestPersistence:
    def test_state_round_trip(self):
        decoded = _decoded(_arith_module())
        program = lower.LoweredProgram(decoded).lower_all()
        state = program.to_state()
        rebuilt = lower.LoweredProgram.from_state(decoded, state).lower_all()
        original = [
            (f, l, r.to_state()) for f, l, r in program.region_table()
        ]
        restored = [
            (f, l, r.to_state()) for f, l, r in rebuilt.region_table()
        ]
        assert original and original == restored

    def test_rebuilt_program_executes_identically(self):
        module = _arith_module()
        decoded = _decoded(module)
        state = lower.LoweredProgram(decoded).lower_all().to_state()
        ref = run_module(module, backend="tuples")
        rebuilt = lower.LoweredProgram.from_state(decoded, state).lower_all()
        interp = Interpreter(module, backend="vector")
        # Seed the memo with the rebuilt program so the run uses it.
        token = lower._module_token(module)
        setattr(module, lower._MODULE_CACHE_ATTR, (token, {None: rebuilt}))
        got = interp.run()
        assert got.return_value == ref.return_value
        assert got.steps == ref.steps

    def test_version_mismatch_raises(self):
        decoded = _decoded(_arith_module())
        state = lower.LoweredProgram(decoded).lower_all().to_state()
        state["version"] = 999
        with pytest.raises(lower.LowerError, match="version"):
            lower.LoweredProgram.from_state(decoded, state)

    def test_stale_region_span_raises(self):
        decoded = _decoded(_arith_module())
        state = lower.LoweredProgram(decoded).lower_all().to_state()
        (name, labels), = [
            (n, ls) for n, ls in state["functions"].items() if ls
        ]
        label, regions = next(iter(labels.items()))
        regions[0]["start"] = len(decoded.block(name, label).ops) - 1
        with pytest.raises(lower.LowerError, match="does not match"):
            lower.LoweredProgram.from_state(decoded, state)

    def test_artifact_store_round_trip(self, tmp_path):
        from repro.experiments import artifacts as artifacts_mod

        module = _arith_module()
        decoded = _decoded(module)
        state = lower.LoweredProgram(decoded).lower_all().to_state()
        store = artifacts_mod.ArtifactStore(str(tmp_path / "store"))
        cost_sig = (4.0, 1.0, 3.0)
        assert store.load_lowered(module, cost_sig) is None
        store.save_lowered(module, cost_sig, state)
        assert store.load_lowered(module, cost_sig) == state
        assert store.load_lowered(module, (2.0, 1.0, 3.0)) is None


class TestSuffixKernels:
    """Suffix kernels: extended superops planted at mid-path resume
    indices so a turn ended at a site re-enters fused execution."""

    def _ext_program(self):
        module = _mem_loop_module()
        decoded = _decoded(module)
        program = lower.LoweredProgram(
            decoded, extended=True, issue_width=4
        )
        return module, decoded, program

    def test_suffix_kernels_planted_at_resume_points(self):
        from repro.ir.decode import OP_FUSED2, OP_LOAD, OP_STORE

        _, decoded, program = self._ext_program()
        block = program.block("main", "loop")
        ops = decoded.function("main").blocks["loop"].ops
        load_at = next(i for i, op in enumerate(ops) if op[0] == OP_LOAD)
        store_at = next(i for i, op in enumerate(ops) if op[0] == OP_STORE)
        ext = [
            r for r in lower.block_regions(block)
            if isinstance(r, lower.ExtRegion)
        ]
        starts = {r.start for r in ext}
        assert 0 in starts           # the home region at the run head
        assert load_at in starts     # load park / horizon re-execute
        assert store_at in starts    # store re-execute
        assert store_at + 1 in starts  # post-store resume (SAB path)
        # Each region owns exactly one OP_FUSED2 superop at its start.
        fused_at = [
            i for i, op in enumerate(block.ops) if op[0] == OP_FUSED2
        ]
        assert fused_at == sorted(starts)

    def test_suffix_regions_survive_state_round_trip(self):
        _, decoded, program = self._ext_program()
        program.lower_all()
        state = program.to_state()
        rebuilt = lower.LoweredProgram.from_state(decoded, state).lower_all()
        assert rebuilt.extended and rebuilt.issue_width == 4
        original = [
            (f, l, r.to_state()) for f, l, r in program.region_table()
        ]
        restored = [
            (f, l, r.to_state()) for f, l, r in rebuilt.region_table()
        ]
        assert any(r.get("kind") == "ext" for _, _, r in original)
        assert original == restored


class TestKernelArtifacts:
    def test_kernel_store_round_trip_without_relower(
        self, tmp_path, monkeypatch
    ):
        # Acceptance criterion: a stored kernel table alone rebuilds
        # the vector program — loading must never re-run the lowering
        # analysis or the codegen emitters.
        from repro.experiments import artifacts as artifacts_mod
        from repro.ir import codegen
        from repro.tlssim.config import SimConfig
        from repro.tlssim.engine import TLSEngine

        module = _mem_loop_module()
        store = artifacts_mod.ArtifactStore(str(tmp_path / "store"))
        lower.set_persistence(store.load_kernels, store.save_kernels)
        try:
            ref = TLSEngine(
                _mem_loop_module(),
                config=SimConfig(backend="tuples"),
                parallel=False,
            ).run()
            config = SimConfig(backend="vector")
            first_engine = TLSEngine(module, config=config, parallel=False)
            first = first_engine.run()
            assert first_engine.backend == "vector"
            assert first.to_state() == ref.to_state()
            assert store.info()["kernels"] == 1

            # Drop the in-process memo and forbid relowering: the
            # second engine must come up entirely from the store.
            delattr(module, lower._MODULE_CACHE_ATTR)

            def relowered(*args, **kwargs):
                raise AssertionError("relowered instead of loading kernels")

            monkeypatch.setattr(codegen, "generate_classic", relowered)
            monkeypatch.setattr(codegen, "generate_extended", relowered)
            second_engine = TLSEngine(module, config=config, parallel=False)
            second = second_engine.run()
            assert second_engine.backend == "vector"
            assert second.to_state() == first.to_state()
        finally:
            lower.set_persistence(None, None)


class TestOpstats:
    def test_program_opstats_counts(self):
        decoded = _decoded(_arith_module())
        program = lower.LoweredProgram(decoded).lower_all()
        stats = lower.program_opstats(program)
        assert stats["regions"] >= 1
        assert stats["fused_static"] == sum(stats["region_lengths"])
        assert stats["static_instructions"] == sum(stats["opcodes"].values())
        assert stats["opcodes"]["binop"] >= 3
        assert min(stats["region_lengths"]) >= lower.MIN_REGION_LEN

    def test_plain_decoded_program_has_no_regions(self):
        decoded = _decoded(_arith_module())
        stats = lower.program_opstats(decoded)
        assert stats["regions"] == 0
        assert stats["fused_static"] == 0
        assert stats["static_instructions"] > 0
