"""Memory image layout, module verifier, call graph/tree."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import CallGraph, CallTree
from repro.ir.cfg import CFG
from repro.ir.instructions import Call, Const, Jump, Ret
from repro.ir.loops import LoopForest
from repro.ir.memimage import (
    GLOBAL_BASE,
    WORDS_PER_LINE,
    MemoryImage,
    NullDereference,
    line_of,
)
from repro.ir.module import Module, ParallelLoop
from repro.ir.operands import Reg
from repro.ir.verifier import VerificationError, verify_module


class TestMemoryImage:
    def make(self):
        module = Module()
        module.add_global("a", 3, init=[1, 2])
        module.add_global("b", 1, init=9)
        return MemoryImage(module)

    def test_globals_line_aligned(self):
        memory = self.make()
        assert memory.addr_of("a") % WORDS_PER_LINE == 0
        assert memory.addr_of("b") % WORDS_PER_LINE == 0
        assert memory.addr_of("a") >= GLOBAL_BASE

    def test_distinct_globals_on_distinct_lines(self):
        memory = self.make()
        assert line_of(memory.addr_of("a")) != line_of(memory.addr_of("b"))

    def test_init_data(self):
        memory = self.make()
        assert memory.global_words("a") == [1, 2, 0]
        assert memory.global_words("b") == [9]

    def test_load_default_zero(self):
        memory = self.make()
        assert memory.load(memory.addr_of("a") + 2) == 0

    def test_store_load(self):
        memory = self.make()
        memory.store(memory.addr_of("b"), 77)
        assert memory.load(memory.addr_of("b")) == 77

    def test_null_access_rejected(self):
        memory = self.make()
        with pytest.raises(NullDereference):
            memory.load(0)
        with pytest.raises(NullDereference):
            memory.store(0, 1)

    def test_alloc_monotonic_and_disjoint(self):
        memory = self.make()
        first = memory.alloc(10)
        second = memory.alloc(5)
        assert second >= first + 10
        with pytest.raises(ValueError):
            memory.alloc(0)

    def test_heap_starts_after_globals(self):
        memory = self.make()
        assert memory.alloc(1) > memory.addr_of("b")

    def test_checksum_reflects_contents(self):
        first = self.make()
        second = self.make()
        assert first.checksum() == second.checksum()
        second.store(second.addr_of("b") , 123)
        assert first.checksum() != second.checksum()

    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(WORDS_PER_LINE) == 1
        assert line_of(WORDS_PER_LINE - 1) == 0


class TestVerifier:
    def good_module(self):
        mb = ModuleBuilder()
        mb.global_var("g", 1)
        fb = mb.function("main")
        fb.block("entry")
        fb.load("@g")
        fb.ret(0)
        return mb.build()

    def test_good_module_passes(self):
        verify_module(self.good_module())

    def test_unterminated_block(self):
        module = self.good_module()
        function = module.function("main")
        block = function.add_block("open")
        block.append(Const(Reg("x"), 1))
        with pytest.raises(VerificationError, match="not terminated"):
            verify_module(module)

    def test_unknown_branch_target(self):
        module = self.good_module()
        module.function("main").add_block("bad").append(Jump("nowhere"))
        with pytest.raises(VerificationError, match="unknown block"):
            verify_module(module)

    def test_unknown_callee(self):
        module = self.good_module()
        block = module.function("main").add_block("extra")
        block.append(Call(None, "ghost", []))
        block.append(Ret())
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(module)

    def test_arity_mismatch(self):
        mb = ModuleBuilder()
        fb = mb.function("callee", ["a", "b"])
        fb.block("entry")
        fb.ret(0)
        fb = mb.function("main")
        fb.block("entry")
        fb.call("callee", [1])
        fb.ret(0)
        with pytest.raises(VerificationError, match="passes 1 args"):
            verify_module(mb.build())

    def test_unknown_global(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.load("@ghost")
        fb.ret(0)
        with pytest.raises(VerificationError, match="unknown global"):
            verify_module(mb.build())

    def test_bad_parallel_annotation(self):
        module = self.good_module()
        module.parallel_loops.append(ParallelLoop(function="main", header="ghost"))
        with pytest.raises(VerificationError, match="does not exist"):
            verify_module(module)

    def test_all_problems_reported(self):
        module = self.good_module()
        module.function("main").add_block("bad").append(Jump("nowhere"))
        module.parallel_loops.append(ParallelLoop(function="ghost", header="x"))
        with pytest.raises(VerificationError) as info:
            verify_module(module)
        assert len(info.value.problems) >= 2


def chain_module():
    """main -> a -> b, plus main -> b."""
    mb = ModuleBuilder()
    fb = mb.function("b", [])
    fb.block("entry")
    fb.ret(1)
    fb = mb.function("a", [])
    fb.block("entry")
    r = fb.call("b", [])
    fb.ret(r)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    fb.call("a", [])
    fb.call("b", [])
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", 3)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    fb.ret(0)
    return mb.build()


class TestCallGraph:
    def test_edges(self):
        graph = CallGraph(chain_module())
        assert graph.callees["main"] == {"a", "b"}
        assert graph.callees["a"] == {"b"}
        assert graph.callers["b"] == {"a", "main"}

    def test_no_recursion(self):
        assert not CallGraph(chain_module()).is_recursive_from("main")

    def test_recursion_detected(self):
        mb = ModuleBuilder()
        fb = mb.function("loop_fn", [])
        fb.block("entry")
        fb.call("loop_fn", [])
        fb.ret(0)
        fb = mb.function("main")
        fb.block("entry")
        fb.call("loop_fn", [])
        fb.ret(0)
        assert CallGraph(mb.build()).is_recursive_from("main")

    def test_reachable_from(self):
        graph = CallGraph(chain_module())
        assert graph.reachable_from("a") == {"a", "b"}

    def test_unknown_callee_rejected(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.call("ghost", [])
        fb.ret(0)
        with pytest.raises(ValueError, match="unknown function"):
            CallGraph(mb.build())


class TestCallTree:
    def test_stacks_enumerated(self):
        module = chain_module()
        loop_blocks = LoopForest(CFG(module.function("main"))).loop_of("loop").blocks
        tree = CallTree(module, "main", loop_blocks=loop_blocks)
        stacks = {node.stack for node in tree.all_nodes()}
        # root, main->a, main->a->b, main->b
        assert () in stacks
        assert len(stacks) == 4
        depth2 = [s for s in stacks if len(s) == 2]
        assert len(depth2) == 1  # only a->b

    def test_node_functions(self):
        module = chain_module()
        tree = CallTree(module, "main")
        by_stack = {node.stack: node.function for node in tree.all_nodes()}
        assert by_stack[()] == "main"
        assert sorted(
            fn for stack, fn in by_stack.items() if len(stack) == 1
        ) == ["a", "b"]

    def test_recursion_rejected(self):
        mb = ModuleBuilder()
        fb = mb.function("r", [])
        fb.block("entry")
        fb.call("r", [])
        fb.ret(0)
        fb = mb.function("main")
        fb.block("entry")
        fb.call("r", [])
        fb.ret(0)
        with pytest.raises(ValueError, match="recursion"):
            CallTree(mb.build(), "main")

    def test_path(self):
        module = chain_module()
        tree = CallTree(module, "main")
        deep = [n for n in tree.all_nodes() if len(n.stack) == 2][0]
        assert [n.function for n in deep.path()] == ["main", "a", "b"]
