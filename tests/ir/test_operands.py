"""Operand kinds: equality, hashing, coercion."""

import pytest

from repro.ir.operands import GlobalRef, Imm, Reg, as_operand


class TestReg:
    def test_equality(self):
        assert Reg("a") == Reg("a")
        assert Reg("a") != Reg("b")

    def test_hashable(self):
        assert len({Reg("a"), Reg("a"), Reg("b")}) == 2

    def test_not_equal_to_other_kinds(self):
        assert Reg("a") != Imm(1)
        assert Reg("a") != GlobalRef("a")

    def test_repr(self):
        assert repr(Reg("x")) == "%x"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Reg("")


class TestImm:
    def test_equality(self):
        assert Imm(3) == Imm(3)
        assert Imm(3) != Imm(4)

    def test_negative(self):
        assert Imm(-7).value == -7

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            Imm("5")

    def test_hash_distinct_from_reg(self):
        assert hash(Imm(1)) != hash(Reg("1"))


class TestGlobalRef:
    def test_equality(self):
        assert GlobalRef("g") == GlobalRef("g")
        assert GlobalRef("g") != GlobalRef("h")

    def test_repr(self):
        assert repr(GlobalRef("g")) == "@g"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GlobalRef("")


class TestAsOperand:
    def test_int_becomes_imm(self):
        assert as_operand(5) == Imm(5)

    def test_bool_becomes_imm(self):
        assert as_operand(True) == Imm(1)

    def test_plain_string_becomes_reg(self):
        assert as_operand("x") == Reg("x")

    def test_at_string_becomes_global(self):
        assert as_operand("@g") == GlobalRef("g")

    def test_percent_string_becomes_reg(self):
        assert as_operand("%r") == Reg("r")

    def test_operand_passthrough(self):
        reg = Reg("a")
        assert as_operand(reg) is reg

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            as_operand(3.14)
