"""Textual IR: formatting and parsing round-trips."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import run_module
from repro.ir.parser import ParseError, parse_module
from repro.ir.printer import format_instruction, format_module


def sync_module():
    mb = ModuleBuilder("demo")
    mb.global_var("free_list", 1, init=0)
    mb.global_var("arr", 8, init=[1, 2, 3])
    fb = mb.function("helper", ["p"])
    fb.block("entry")
    v = fb.load("p", offset=1)
    fb.store("p", v, offset=2)
    fb.ret(v)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    f_addr = fb.wait("mem:0", kind="addr")
    fb.check(f_addr, "@free_list")
    f_val = fb.wait("mem:0", kind="value")
    m_val = fb.load("@free_list")
    r = fb.select(f_val, m_val)
    fb.resume()
    fb.store("@free_list", r)
    fb.signal("mem:0", "@free_list", kind="addr")
    fb.signal("mem:0", r, kind="value")
    h = fb.call("helper", ["@arr"])
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", 4)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    u = fb.unop("neg", h)
    fb.ret(u)
    module = mb.build()
    module.parallel_loops.append(
        __import__("repro.ir.module", fromlist=["ParallelLoop"]).ParallelLoop(
            function="main", header="loop"
        )
    )
    return module


class TestPrinter:
    def test_instruction_formats(self):
        from repro.ir.instructions import BinOp, Load, Signal, Store, Wait
        from repro.ir.operands import GlobalRef, Imm, Reg

        assert format_instruction(BinOp(Reg("d"), "add", Reg("a"), Imm(1))) == "d = add a, 1"
        assert format_instruction(Load(Reg("d"), Reg("p"), 3)) == "d = load p + 3"
        assert format_instruction(Load(Reg("d"), Reg("p"), -2)) == "d = load p - 2"
        assert format_instruction(Store(GlobalRef("g"), Imm(5))) == "store @g, 5"
        assert format_instruction(Wait(Reg("d"), "ch", "addr")) == "d = wait.addr ch"
        assert format_instruction(Signal("ch", Reg("v"))) == "signal.value ch, v"

    def test_module_has_globals_and_parallel(self):
        text = format_module(sync_module())
        assert "global free_list 1 init 0" in text
        assert "global arr 8 init 1, 2, 3" in text
        assert "parallel main loop" in text
        assert "func helper(p) {" in text


class TestRoundTrip:
    def test_behaviour_preserved(self):
        module = sync_module()
        reparsed = parse_module(format_module(module))
        assert run_module(reparsed).return_value == run_module(module).return_value

    def test_structure_preserved(self):
        module = sync_module()
        reparsed = parse_module(format_module(module))
        assert set(reparsed.functions) == set(module.functions)
        assert set(reparsed.globals) == set(module.globals)
        for name, function in module.functions.items():
            other = reparsed.function(name)
            assert list(other.blocks) == list(function.blocks)
            assert other.instruction_count() == function.instruction_count()
        assert [
            (l.function, l.header) for l in reparsed.parallel_loops
        ] == [(l.function, l.header) for l in module.parallel_loops]

    def test_double_round_trip_fixpoint(self):
        text = format_module(sync_module())
        assert format_module(parse_module(text)) == text


class TestParseErrors:
    def test_statement_outside_function(self):
        with pytest.raises(ParseError, match="outside function"):
            parse_module("x = const 1\n")

    def test_instruction_before_label(self):
        with pytest.raises(ParseError, match="before any block label"):
            parse_module("func f() {\n  x = const 1\n}\n")

    def test_unterminated_function(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_module("func f() {\nentry:\n  ret\n")

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_module("func f() {\nentry:\n  x = add $$, 1\n  ret\n}\n")

    def test_unknown_operation(self):
        with pytest.raises(ParseError, match="unknown operation"):
            parse_module("func f() {\nentry:\n  x = frobnicate 1\n  ret\n}\n")

    def test_condbr_arity(self):
        with pytest.raises(ParseError, match="condbr"):
            parse_module("func f() {\nentry:\n  condbr x, a\n}\n")

    def test_comments_and_blanks_ignored(self):
        module = parse_module(
            "# a comment\n\nfunc main() {\nentry:  # trailing\n  ret 3\n}\n"
        )
        assert run_module(module).return_value == 3

    def test_nested_function_rejected(self):
        with pytest.raises(ParseError, match="nested"):
            parse_module("func f() {\nfunc g() {\n}\n}\n")
