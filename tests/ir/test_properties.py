"""Property-based tests (hypothesis) on core IR invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builder import ModuleBuilder
from repro.ir.cfg import CFG
from repro.ir.dominators import DominatorTree
from repro.ir.interpreter import MASK, eval_binop, run_module
from repro.ir.loops import LoopForest
from repro.ir.parser import parse_module
from repro.ir.printer import format_module

int64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
nonzero64 = int64.filter(lambda v: v != 0)


class TestArithmeticProperties:
    @given(st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]), int64, int64)
    def test_results_stay_in_64_bit_range(self, op, lhs, rhs):
        result = eval_binop(op, lhs, rhs)
        assert -(1 << 63) <= result < (1 << 63)

    @given(int64, nonzero64)
    def test_div_mod_identity(self, lhs, rhs):
        q = eval_binop("div", lhs, rhs)
        r = eval_binop("mod", lhs, rhs)
        assert (q * rhs + r) & MASK == lhs & MASK

    @given(int64, nonzero64)
    def test_mod_magnitude_bounded(self, lhs, rhs):
        assert abs(eval_binop("mod", lhs, rhs)) < abs(rhs)

    @given(int64, int64)
    def test_comparisons_boolean(self, lhs, rhs):
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            assert eval_binop(op, lhs, rhs) in (0, 1)

    @given(int64, int64)
    def test_comparison_trichotomy(self, lhs, rhs):
        assert eval_binop("lt", lhs, rhs) + eval_binop("gt", lhs, rhs) + eval_binop(
            "eq", lhs, rhs
        ) == 1

    @given(int64, int64)
    def test_min_max_partition(self, lhs, rhs):
        low = eval_binop("min", lhs, rhs)
        high = eval_binop("max", lhs, rhs)
        assert {low, high} == {lhs, rhs} or (low == high == lhs == rhs)
        assert low <= high

    @given(int64, int64)
    def test_add_commutes(self, lhs, rhs):
        assert eval_binop("add", lhs, rhs) == eval_binop("add", rhs, lhs)

    @given(int64, int64)
    def test_xor_self_inverse(self, lhs, rhs):
        once = eval_binop("xor", lhs, rhs)
        assert eval_binop("xor", once, rhs) == lhs


# -- random CFG generation --------------------------------------------------


@st.composite
def random_cfg_module(draw):
    """A function with N blocks and random (valid) branch structure.

    Block 0 is the entry; every block ends in a jump/condbr to random
    blocks or a return, so arbitrary CFG shapes (including loops and
    unreachable blocks) are produced.
    """
    count = draw(st.integers(min_value=1, max_value=8))
    mb = ModuleBuilder()
    fb = mb.function("f", ["c"])
    labels = [f"b{i}" for i in range(count)]
    choices = []
    for index in range(count):
        kind = draw(st.sampled_from(["ret", "jump", "condbr"]))
        if kind == "jump":
            choices.append(("jump", draw(st.integers(0, count - 1))))
        elif kind == "condbr":
            choices.append(
                (
                    "condbr",
                    draw(st.integers(0, count - 1)),
                    draw(st.integers(0, count - 1)),
                )
            )
        else:
            choices.append(("ret",))
    for index, label in enumerate(labels):
        fb.block(label)
        choice = choices[index]
        if choice[0] == "ret":
            fb.ret(0)
        elif choice[0] == "jump":
            fb.jump(labels[choice[1]])
        else:
            fb.condbr("c", labels[choice[1]], labels[choice[2]])
    return mb.module.function("f")


class TestCFGProperties:
    @given(random_cfg_module())
    @settings(max_examples=80, deadline=None)
    def test_postorder_is_permutation_of_reachable(self, function):
        cfg = CFG(function)
        order = cfg.postorder()
        assert sorted(order) == sorted(cfg.reachable)
        assert len(set(order)) == len(order)

    @given(random_cfg_module())
    @settings(max_examples=80, deadline=None)
    def test_rpo_entry_first(self, function):
        cfg = CFG(function)
        assert cfg.reverse_postorder()[0] == cfg.entry

    @given(random_cfg_module())
    @settings(max_examples=80, deadline=None)
    def test_entry_dominates_everything_reachable(self, function):
        cfg = CFG(function)
        tree = DominatorTree(cfg)
        for label in cfg.reachable:
            assert tree.dominates(cfg.entry, label)

    @given(random_cfg_module())
    @settings(max_examples=80, deadline=None)
    def test_idom_strictly_dominates(self, function):
        cfg = CFG(function)
        tree = DominatorTree(cfg)
        for label, parent in tree.idom.items():
            if parent is not None:
                assert tree.strictly_dominates(parent, label)

    @given(random_cfg_module())
    @settings(max_examples=80, deadline=None)
    def test_loop_headers_dominate_latches(self, function):
        cfg = CFG(function)
        tree = DominatorTree(cfg)
        forest = LoopForest(cfg, tree)
        for loop in forest.loops.values():
            for latch in loop.latches:
                assert tree.dominates(loop.header, latch)
            assert loop.header in loop.blocks
            assert set(loop.latches) <= loop.blocks

    @given(random_cfg_module())
    @settings(max_examples=80, deadline=None)
    def test_nested_loop_blocks_are_subsets(self, function):
        forest = LoopForest(CFG(function))
        for loop in forest.loops.values():
            if loop.parent is not None:
                assert loop.blocks <= loop.parent.blocks


# -- round-trip on random straight-line programs ------------------------------


@st.composite
def random_linear_program(draw):
    """A straight-line arithmetic program over two globals."""
    mb = ModuleBuilder()
    mb.global_var("a", 1, init=draw(st.integers(0, 100)))
    mb.global_var("b", 1, init=draw(st.integers(0, 100)))
    fb = mb.function("main")
    fb.block("entry")
    regs = [fb.load("@a"), fb.load("@b")]
    for _ in range(draw(st.integers(1, 12))):
        op = draw(st.sampled_from(["add", "sub", "mul", "xor", "and", "or", "min", "max"]))
        lhs = draw(st.sampled_from(regs))
        rhs_choice = draw(st.integers(0, 1))
        rhs = draw(st.sampled_from(regs)) if rhs_choice else draw(st.integers(-50, 50))
        regs.append(fb.binop(op, lhs, rhs))
    fb.store("@a", regs[-1])
    fb.ret(regs[-1])
    return mb.build()


class TestRoundTripProperties:
    @given(random_linear_program())
    @settings(max_examples=60, deadline=None)
    def test_parse_format_preserves_behaviour(self, module):
        expected = run_module(module)
        reparsed = parse_module(format_module(module))
        actual = run_module(reparsed)
        assert actual.return_value == expected.return_value
        assert actual.memory.checksum() == expected.memory.checksum()

    @given(random_linear_program())
    @settings(max_examples=30, deadline=None)
    def test_format_parse_format_fixpoint(self, module):
        text = format_module(module)
        assert format_module(parse_module(text)) == text
