"""Basic blocks, functions, modules: containers and identities."""

import pytest

from repro.ir.basicblock import deterministic_iids
from repro.ir.function import Function
from repro.ir.instructions import Const, Jump, Ret
from repro.ir.module import ChannelInfo, GlobalVar, Module, ParallelLoop
from repro.ir.operands import Reg


def simple_function(name="f"):
    function = Function(name)
    block = function.add_block("entry")
    block.append(Const(Reg("x"), 1))
    block.append(Ret(Reg("x")))
    return function


class TestBasicBlock:
    def test_append_assigns_unique_iids(self):
        function = simple_function()
        iids = [i.iid for i in function.entry.instructions]
        assert all(i is not None for i in iids)
        assert len(set(iids)) == len(iids)

    def test_origin_iid_defaults_to_iid(self):
        function = simple_function()
        for instr in function.entry.instructions:
            assert instr.origin_iid == instr.iid

    def test_append_after_terminator_rejected(self):
        function = simple_function()
        with pytest.raises(ValueError):
            function.entry.append(Const(Reg("y"), 2))

    def test_insert_before_terminator(self):
        function = simple_function()
        function.entry.insert(1, Const(Reg("y"), 2))
        assert len(function.entry) == 3
        assert function.entry.terminator is not None

    def test_terminator_none_when_open(self):
        function = Function("g")
        block = function.add_block("entry")
        block.append(Const(Reg("x"), 1))
        assert block.terminator is None

    def test_successors(self):
        function = Function("g")
        block = function.add_block("entry")
        block.append(Jump("next"))
        assert block.successors() == ["next"]

    def test_body_excludes_terminator(self):
        function = simple_function()
        assert len(function.entry.body) == 1


class TestDeterministicIids:
    def test_two_builds_get_identical_iids(self):
        with deterministic_iids():
            first = simple_function()
        with deterministic_iids():
            second = simple_function()
        assert [i.iid for i in first.entry.instructions] == [
            i.iid for i in second.entry.instructions
        ]

    def test_counter_resumes_past_context(self):
        with deterministic_iids():
            inside = simple_function()
        outside = simple_function()
        inside_ids = {i.iid for i in inside.entry.instructions}
        outside_ids = {i.iid for i in outside.entry.instructions}
        assert not (inside_ids & outside_ids)


class TestFunction:
    def test_entry_is_first_block(self):
        function = Function("f")
        function.add_block("a")
        function.add_block("b")
        assert function.entry_label == "a"

    def test_duplicate_label_rejected(self):
        function = Function("f")
        function.add_block("a")
        with pytest.raises(ValueError):
            function.add_block("a")

    def test_registers_includes_params(self):
        function = Function("f", ["p"])
        function.add_block("entry").append(Ret(Reg("p")))
        assert Reg("p") in function.registers()

    def test_fresh_label_avoids_collisions(self):
        function = Function("f")
        function.add_block("x")
        assert function.fresh_label("x") == "x.1"
        assert function.fresh_label("y") == "y"

    def test_fresh_reg_avoids_collisions(self):
        function = Function("f", ["t"])
        function.add_block("entry").append(Ret())
        assert function.fresh_reg("t").name == "t.1"

    def test_instruction_count(self):
        assert simple_function().instruction_count() == 2

    def test_cannot_remove_entry(self):
        function = Function("f")
        function.add_block("entry")
        with pytest.raises(ValueError):
            function.remove_block("entry")


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module()
        module.add_function(simple_function("f"))
        with pytest.raises(ValueError):
            module.add_function(simple_function("f"))

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global("g")
        with pytest.raises(ValueError):
            module.add_global("g")

    def test_global_int_init_promoted_to_list(self):
        module = Module()
        var = module.add_global("g", 4, init=7)
        assert var.initial_words() == [7, 0, 0, 0]

    def test_main_property(self):
        module = Module()
        with pytest.raises(ValueError):
            module.main
        module.add_function(simple_function("main"))
        assert module.main.name == "main"

    def test_parallel_loop_lookup(self):
        module = Module()
        loop = ParallelLoop(function="main", header="loop")
        module.parallel_loops.append(loop)
        assert module.parallel_loop_for("main", "loop") is loop
        assert module.parallel_loop_for("main", "other") is None

    def test_duplicate_channel_rejected(self):
        module = Module()
        module.add_channel(ChannelInfo(name="c", kind="scalar", scalar="r"))
        with pytest.raises(ValueError):
            module.add_channel(ChannelInfo(name="c", kind="mem"))


class TestGlobalVar:
    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            GlobalVar("g", 0)

    def test_oversized_init_rejected(self):
        with pytest.raises(ValueError):
            GlobalVar("g", 1, [1, 2])

    def test_channel_kind_validated(self):
        with pytest.raises(ValueError):
            ChannelInfo(name="c", kind="bogus")
