"""Textual round-trips of fully transformed (TLS-synchronized) programs.

The extended format carries channels, per-loop channel lists and
``load.sync`` markers, so a compiled binary can be printed, re-parsed
and re-simulated with *identical* behaviour — the strongest equivalence
the textual form can offer.
"""

import pytest

from repro.experiments.runner import bundle_for
from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.tlssim.sequential import simulate_tls


@pytest.mark.parametrize("name", ["parser", "go", "gzip_comp"])
class TestTransformedRoundTrip:
    def test_metadata_survives(self, name):
        module = bundle_for(name).compiled.sync_ref
        reparsed = parse_module(format_module(module))
        assert set(reparsed.channels) == set(module.channels)
        for channel, info in module.channels.items():
            other = reparsed.channels[channel]
            assert other.kind == info.kind
            assert other.scalar == info.scalar
        assert len(reparsed.sync_loads) == len(module.sync_loads)
        for original, parsed in zip(
            module.parallel_loops, reparsed.parallel_loops
        ):
            assert parsed.scalar_channels == original.scalar_channels
            assert parsed.mem_channels == original.mem_channels

    def test_simulation_identical(self, name):
        module = bundle_for(name).compiled.sync_ref
        reparsed = parse_module(format_module(module))
        first = simulate_tls(module)
        second = simulate_tls(reparsed)
        assert second.return_value == first.return_value
        assert second.program_cycles == pytest.approx(first.program_cycles)
        assert len(second.regions[0].violations) == len(
            first.regions[0].violations
        )
        assert second.regions[0].slots.fail == pytest.approx(
            first.regions[0].slots.fail
        )

    def test_fixpoint(self, name):
        module = bundle_for(name).compiled.sync_ref
        text = format_module(module)
        assert format_module(parse_module(text)) == text
