"""Offline attribution, critical path, grouping, diffs and reports.

The analyzer must reproduce the engine's online attribution
*bit-identically* from the event stream alone — that equivalence is
the module's acceptance gate — and its stall records / critical path
must name the synchronization structure the conftest loop was built
with.
"""

import json

import pytest

from repro.experiments.trace import run_traced
from repro.obs.analysis import (
    AnalysisError,
    GROUP_MODES,
    ascii_report,
    attribute_events,
    diff_analyses,
    diff_report,
    group_stalls,
    json_report,
    render_html,
)
from repro.obs.bus import CollectorSink, EventBus
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine

from tests.tlssim.conftest import make_counted_loop


def _traced(module, config=None):
    bus = EventBus()
    collector = bus.attach(CollectorSink())
    result = TLSEngine(
        module, config=config or SimConfig(), parallel=True, obs=bus
    ).run()
    return result, collector.events


def _loop_with_mem_dependence(iters=24, filler=40):
    def body(fb):
        v = fb.load("@shared")
        fb.store("@shared", fb.add(v, 1))

    return make_counted_loop(
        iters=iters, body=body, globals_spec=[("shared", 1, 0)],
        filler=filler,
    )


class TestMatchesEngine:
    def test_synthetic_loop(self):
        result, events = _traced(_loop_with_mem_dependence())
        analysis = attribute_events(events)
        assert [r.attribution for r in analysis.regions] == [
            r.attribution for r in result.regions
        ]
        assert analysis.identity_error == 0.0

    @pytest.mark.parametrize("bar", ("U", "C", "H", "L"))
    def test_workload_bars(self, bar):
        run = run_traced("go", bar)
        analysis = attribute_events(run.events)
        engine_attr = [
            r.attribution for r in run.result.regions
            if set(r.attribution) != {"seq"}
        ]
        assert [r.attribution for r in analysis.regions] == engine_attr
        assert analysis.identity_error == 0.0

    def test_region_metadata(self):
        run = run_traced("go", "C")
        analysis = attribute_events(run.events)
        region = analysis.regions[0]
        assert region.num_cores == 4
        assert region.issue_width == 4
        assert region.function == "main"
        assert region.total_slots == region.cycles * 16


class TestStallRecords:
    def test_records_name_the_sync_pairs(self):
        _result, events = _traced(_loop_with_mem_dependence())
        analysis = attribute_events(events)
        stalls = analysis.all_stalls()
        assert stalls
        for record in stalls:
            assert record.producer == record.consumer - 1
            assert record.stall == record.end - record.start
        channels = {r.channel for r in stalls if r.channel}
        assert "scalar:i" in channels

    def test_grouping_modes_cover_all_stalls(self):
        run = run_traced("go", "C")
        analysis = attribute_events(run.events)
        stalls = analysis.all_stalls()
        total = sum(r.stall for r in stalls)
        for mode in GROUP_MODES:
            groups = group_stalls(stalls, mode)
            assert sum(g["cycles"] for g in groups) == total
            assert sum(g["count"] for g in groups) == len(stalls)
            # sorted by stalled cycles, heaviest first
            cycles = [g["cycles"] for g in groups]
            assert cycles == sorted(cycles, reverse=True)

    def test_unknown_grouping_rejected(self):
        with pytest.raises(ValueError):
            group_stalls([], "bogus")

    def test_addresses_resolved_for_mem_stalls(self):
        run = run_traced("go", "C")
        analysis = attribute_events(run.events)
        addressed = [
            r for r in analysis.all_stalls()
            if r.cause == "mem" and r.addr is not None
        ]
        assert addressed, "no mem stall resolved to an address"


class TestCriticalPath:
    def test_chain_spans_committed_epochs(self):
        _result, events = _traced(_loop_with_mem_dependence())
        analysis = attribute_events(events)
        region = analysis.regions[0]
        path = region.critical_path()
        assert len(path["hops"]) == len(region.commits)
        assert path["signal_slack"] >= 0.0
        assert path["commit_slack"] >= 0.0
        assert path["bound_cycles"] <= path["cycles"]
        assert path["bound_cycles"] == (
            path["cycles"] - path["signal_slack"]
        )

    def test_signal_hops_carry_pair_detail(self):
        run = run_traced("go", "C")
        region = attribute_events(run.events).regions[0]
        signal_hops = [
            h for h in region.critical_path()["hops"]
            if h["edge"] == "signal"
        ]
        assert signal_hops, "go/C critical path shows no signal edges"
        for hop in signal_hops:
            assert hop["slack"] > 0.0
            assert hop["wait_iid"] is not None


class TestSchemaGuards:
    def test_truncated_stream_rejected(self):
        _result, events = _traced(_loop_with_mem_dependence())
        assert events[-1].kind == "region_end"
        with pytest.raises(AnalysisError):
            attribute_events(events[:-1])

    def test_pre_analysis_commit_events_rejected(self):
        _result, events = _traced(_loop_with_mem_dependence())
        for event in events:
            if event.kind == "commit":
                event.fields.pop("busy", None)
        with pytest.raises(AnalysisError):
            attribute_events(events)

    def test_missing_region_dimensions_rejected(self):
        _result, events = _traced(_loop_with_mem_dependence())
        for event in events:
            if event.kind == "region_start":
                event.fields.pop("num_cores", None)
                event.fields.pop("issue_width", None)
        with pytest.raises(AnalysisError):
            attribute_events(events)
        # explicit fallbacks recover old streams
        analysis = attribute_events(events, num_cores=4, issue_width=4)
        assert analysis.identity_error == 0.0


class TestDiff:
    def test_induced_sync_slowdown_is_explained(self):
        """The L bar stalls synchronized loads until the producer epoch
        completes (Figure 9's conservative lower bound) — the diff must
        name synchronization, specifically l-mode, as the regression."""
        fast = attribute_events(run_traced("go", "C").events)
        slow = attribute_events(run_traced("go", "L").events)
        delta = diff_analyses(fast, slow, label_a="C", label_b="L")
        assert delta["cycles_b"] > delta["cycles_a"]
        assert delta["top_regression"] == "sync.lmode"
        text = diff_report(delta)
        assert "largest regression: sync.lmode" in text

    def test_self_diff_is_flat(self):
        analysis = attribute_events(run_traced("go", "C").events)
        delta = diff_analyses(analysis, analysis)
        assert all(m["delta_slots"] == 0.0 for m in delta["movers"])
        assert all(
            m["delta_cycles"] == 0.0 for m in delta["pair_movers"]
        )


class TestReports:
    def test_json_report_schema(self):
        analysis = attribute_events(
            run_traced("go", "C").events,
            meta={"workload": "go", "bar": "C"},
        )
        payload = json_report(analysis, by="pair", top=5)
        assert payload["schema"] == 1
        assert payload["stream"] == "repro.obs.analysis"
        assert payload["totals"]["identity_error"] == 0.0
        assert payload["totals"]["attributed"] == payload["totals"]["slots"]
        assert len(payload["stalls"]["top"]) <= 5
        assert payload["regions"][0]["critical_path"]["hops"] > 0
        json.dumps(payload)  # must be serializable as-is

    def test_ascii_report_mentions_top_pair(self):
        analysis = attribute_events(
            run_traced("go", "C").events,
            meta={"workload": "go", "bar": "C"},
        )
        text = ascii_report(analysis)
        assert "identity error: 0" in text
        assert "busy" in text
        top = group_stalls(analysis.all_stalls(), "pair")[0]
        assert top["key"] in text
        assert "critical path" in text

    def test_html_report_self_contained(self):
        analysis = attribute_events(run_traced("go", "C").events)
        html = render_html(analysis, title="go C")
        assert html.startswith("<!DOCTYPE html>")
        assert "const DATA =" in html
        assert "http" not in html.split("<body>")[1]


class TestCli:
    def test_analyze_live(self, capsys):
        from repro.cli import main

        assert main(["analyze", "go:C", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "slot attribution" in out
        assert "identity error: 0" in out

    def test_analyze_jsonl_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "go_C.jsonl"
        assert main([
            "trace", "--workload", "go", "--bar", "C",
            "--format", "jsonl", "-o", str(log),
        ]) == 0
        report = tmp_path / "report.json"
        assert main([
            "analyze", str(log), "--format", "json",
            "-o", str(report), "--no-cache",
        ]) == 0
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["schema"] == 1
        assert payload["totals"]["identity_error"] == 0.0

    def test_analyze_diff_cli(self, capsys):
        from repro.cli import main

        assert main([
            "analyze", "--diff", "go:C", "go:L", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "largest regression: sync.lmode" in out

    def test_analyze_requires_target(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--no-cache"]) == 2
        assert "required" in capsys.readouterr().err
