"""Event bus semantics: envelopes, ambient time, sinks."""

import pytest

from repro.obs.bus import CollectorSink, EventBus
from repro.obs.events import ENVELOPE_KEYS, EPOCH_KINDS, KINDS, Event


class TestEventTaxonomy:
    def test_every_kind_has_category_and_fields(self):
        for kind, (category, fields, doc) in KINDS.items():
            assert category in (
                "epoch", "fwd", "sab", "hwsync", "pred", "cache"
            ), kind
            assert isinstance(fields, tuple), kind
            assert doc, f"{kind} has no doc string"

    def test_epoch_kinds_subset(self):
        assert "epoch_start" in EPOCH_KINDS
        assert "commit" in EPOCH_KINDS
        assert "violation" in EPOCH_KINDS
        assert "cache_miss" not in EPOCH_KINDS
        assert EPOCH_KINDS <= set(KINDS)

    def test_payload_fields_never_shadow_envelope(self):
        for kind, (_category, fields, _doc) in KINDS.items():
            assert not set(fields) & set(ENVELOPE_KEYS), kind

    def test_event_round_trips_through_dict(self):
        event = Event(
            seq=7, kind="violation", time=12.5, epoch=3, generation=1,
            core=2, fields={"reason": "store", "load_iid": 9, "unit": 1},
        )
        clone = Event.from_dict(event.to_dict())
        assert clone == event

    def test_key_ignores_seq(self):
        a = Event(seq=1, kind="commit", time=5.0, epoch=0)
        b = Event(seq=99, kind="commit", time=5.0, epoch=0)
        assert a.key() == b.key()


class TestEventBus:
    def test_emit_delivers_to_sinks_in_order(self):
        bus = EventBus()
        first, second = bus.attach(CollectorSink()), bus.attach(CollectorSink())
        bus.emit("commit", 10.0, epoch=0)
        assert len(first) == len(second) == 1
        assert first.events[0].kind == "commit"

    def test_seq_is_monotonic(self):
        bus = EventBus()
        collector = bus.attach(CollectorSink())
        for _ in range(5):
            bus.emit("commit", 1.0, epoch=0)
        assert [e.seq for e in collector.events] == [1, 2, 3, 4, 5]

    def test_ambient_now_stamps_time(self):
        bus = EventBus()
        collector = bus.attach(CollectorSink())
        bus.now = 42.5
        bus.emit("cache_miss", level="l2", line=7)
        assert collector.events[0].time == 42.5

    def test_explicit_time_wins_over_now(self):
        bus = EventBus()
        collector = bus.attach(CollectorSink())
        bus.now = 42.5
        bus.emit("commit", 50.0, epoch=1)
        assert collector.events[0].time == 50.0

    def test_envelope_shadowing_rejected(self):
        bus = EventBus()
        bus.attach(CollectorSink())
        with pytest.raises(ValueError):
            bus.emit("commit", 1.0, seq=5)

    def test_attach_requires_on_event(self):
        with pytest.raises(TypeError):
            EventBus().attach(object())

    def test_detach(self):
        bus = EventBus()
        collector = bus.attach(CollectorSink())
        bus.detach(collector)
        bus.emit("commit", 1.0, epoch=0)
        assert len(collector) == 0

    def test_of_kind_filter(self):
        bus = EventBus()
        collector = bus.attach(CollectorSink())
        bus.emit("commit", 1.0, epoch=0)
        bus.emit("squash", 2.0, epoch=1, reason="store")
        bus.emit("commit", 3.0, epoch=1)
        assert [e.time for e in collector.of_kind("commit")] == [1.0, 3.0]
