"""Exporters: JSONL round-trip, Chrome trace validity, HTML report."""

import json

import pytest

from repro.obs.bus import CollectorSink, EventBus
from repro.obs.export import (
    chrome_trace,
    html_report,
    jsonl_lines,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.tlssim.engine import TLSEngine

from tests.tlssim.conftest import make_counted_loop


def traced_events(module=None):
    bus = EventBus()
    collector = bus.attach(CollectorSink())
    engine = TLSEngine(
        module or make_counted_loop(iters=12, filler=25), obs=bus
    )
    engine.run()
    return collector.events


def violating_module():
    def body(fb):
        v = fb.load("@shared")
        fb.store("@shared", fb.add(v, 1))

    return make_counted_loop(
        iters=20, body=body, globals_spec=[("shared", 1, 0)], filler=40
    )


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = traced_events()
        path = str(tmp_path / "events.jsonl")
        write_jsonl(events, path, meta={"workload": "t"})
        header, loaded = read_jsonl(path)
        assert header["schema"] == 1
        assert header["stream"] == "repro.obs.events"
        assert header["workload"] == "t"
        assert loaded == events

    def test_every_line_is_valid_json(self):
        events = traced_events()
        for line in jsonl_lines(events):
            json.loads(line)

    def test_rejects_foreign_stream(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"stream": "not-ours", "schema": 1}\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"stream": "repro.obs.events", "schema": 99}\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))


class TestChromeTrace:
    def test_valid_payload(self):
        payload = chrome_trace(traced_events(), num_cores=4)
        assert validate_chrome_trace(payload) == []

    def test_valid_with_violations(self):
        payload = chrome_trace(traced_events(violating_module()), num_cores=4)
        assert validate_chrome_trace(payload) == []
        instants = [
            e for e in payload["traceEvents"] if e.get("ph") == "i"
        ]
        assert any("violation" in e["name"] for e in instants)

    def test_epoch_slices_land_on_their_core_track(self):
        payload = chrome_trace(traced_events(), num_cores=4)
        slices = [
            e for e in payload["traceEvents"]
            if e.get("ph") == "X" and e["name"].startswith("epoch ")
        ]
        assert slices
        for entry in slices:
            epoch = int(entry["name"].split()[1])
            assert entry["tid"] == epoch % 4

    def test_per_track_ts_monotonic(self):
        payload = chrome_trace(traced_events(violating_module()), num_cores=4)
        last = {}
        for entry in payload["traceEvents"]:
            if entry.get("ph") != "X":
                continue
            key = (entry["pid"], entry["tid"])
            assert entry["ts"] >= last.get(key, float("-inf"))
            last[key] = entry["ts"]

    def test_flow_arrows_pair_up(self):
        bus = EventBus()
        collector = bus.attach(CollectorSink())
        bus.emit("fwd_send", 1.0, epoch=0, channel="ch", msg_kind="value",
                 payload=7, consumer=1)
        bus.emit("fwd_wait", 3.0, epoch=1, channel="ch", msg_kind="value",
                 payload=7)
        payload = chrome_trace(collector.events, num_cores=4)
        assert validate_chrome_trace(payload) == []
        flows = [e for e in payload["traceEvents"] if e.get("ph") in ("s", "f")]
        assert {e["ph"] for e in flows} == {"s", "f"}

    def test_validator_flags_garbage(self):
        assert validate_chrome_trace({"traceEvents": []})
        bad = {
            "traceEvents": [
                {"ph": "Q", "ts": 0, "pid": 0, "tid": 0, "name": "?"},
                {"ph": "X", "pid": 0, "tid": 0, "name": "no-ts", "dur": 1},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) == 2

    def test_write_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(traced_events(), path, num_cores=4)
        payload = json.load(open(path))
        assert validate_chrome_trace(payload) == []
        assert payload["metadata"]["schema"] == 1


class TestHtmlReport:
    def test_self_contained_document(self):
        html = html_report(traced_events(), num_cores=4, title="t report")
        assert html.startswith("<!DOCTYPE html>" ) or "<html" in html
        assert "t report" in html
        assert "__DATA__" not in html and "__TITLE__" not in html
        assert "<script" in html and "src=" not in html.split("<script")[1][:40]
