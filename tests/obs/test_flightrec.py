"""Flight recorder: ring semantics, dump schema, fault guard."""

import json

import pytest

from repro.obs import flightrec
from repro.obs.flightrec import DUMP_SCHEMA_VERSION, FlightRecorder, fault_guard


class TestRing:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record("log", {"i": i})
        assert len(recorder) == 3
        records = recorder.snapshot()["records"]
        assert [r["data"]["i"] for r in records] == [7, 8, 9]

    def test_sequence_numbers_survive_eviction(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(5):
            recorder.record("log", {"i": i})
        seqs = [r["seq"] for r in recorder.snapshot()["records"]]
        assert seqs == [4, 5]

    def test_record_never_raises(self):
        recorder = FlightRecorder(capacity=1)
        recorder.record("weird", {"payload": object()})  # unserializable ok
        assert len(recorder) == 1


class TestSnapshot:
    def test_schema(self):
        recorder = FlightRecorder(capacity=4, component="test")
        recorder.record("span", {"name": "op"})
        snap = recorder.snapshot(reason="unit")
        assert snap["schema"] == DUMP_SCHEMA_VERSION
        assert snap["stream"] == "repro.obs.flightrec"
        assert snap["reason"] == "unit"
        assert snap["component"] == "test"
        assert snap["inflight"] is None
        assert isinstance(snap["pid"], int)
        assert snap["records"][0]["kind"] == "span"

    def test_inflight_appears_in_snapshot(self):
        recorder = FlightRecorder()
        recorder.set_inflight(job="j01", workload="go", bar="C")
        snap = recorder.snapshot()
        assert snap["inflight"] == {"job": "j01", "workload": "go", "bar": "C"}
        recorder.clear_inflight()
        assert recorder.snapshot()["inflight"] is None


class TestDump:
    def test_dump_writes_json_under_root(self, tmp_path):
        recorder = FlightRecorder(component="dumper")
        recorder.record("log", {"event": "hello"})
        path = recorder.dump("unit", root=str(tmp_path))
        assert path.startswith(str(tmp_path / "flightrec"))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == DUMP_SCHEMA_VERSION
        assert payload["reason"] == "unit"
        assert payload["records"][0]["data"]["event"] == "hello"

    def test_configure_pins_component_and_root(self, tmp_path):
        recorder = flightrec.get()
        old_component, old_root = recorder.component, recorder.root
        try:
            flightrec.configure(component="unit-test", root=str(tmp_path))
            assert recorder.component == "unit-test"
            path = recorder.dump("configured")
            assert path.startswith(str(tmp_path))
        finally:
            recorder.component, recorder.root = old_component, old_root

    def test_configure_capacity_preserves_recent_records(self):
        recorder = FlightRecorder(capacity=8)
        # configure() operates on the singleton; emulate its resize here
        # on a private instance to avoid cross-test state.
        for i in range(6):
            recorder.record("log", {"i": i})
        from collections import deque

        with recorder._lock:
            recorder._records = deque(recorder._records, maxlen=2)
        assert [r["data"]["i"] for r in recorder.snapshot()["records"]] == [4, 5]


class TestFaultGuard:
    def test_dumps_and_propagates(self, tmp_path):
        with pytest.raises(RuntimeError):
            with fault_guard("worker-fault", root=str(tmp_path)) as guard:
                raise RuntimeError("worker exploded")
        assert guard.dump_path is not None
        with open(guard.dump_path) as handle:
            payload = json.load(handle)
        faults = [r for r in payload["records"] if r["kind"] == "fault"]
        assert any("worker exploded" in f["data"]["error"] for f in faults)

    def test_clean_exit_does_not_dump(self, tmp_path):
        with fault_guard("worker-fault", root=str(tmp_path)) as guard:
            pass
        assert guard.dump_path is None
        assert not (tmp_path / "flightrec").exists()

    def test_system_exit_is_not_a_fault(self, tmp_path):
        with pytest.raises(SystemExit):
            with fault_guard("worker-fault", root=str(tmp_path)) as guard:
                raise SystemExit(0)
        assert guard.dump_path is None


class TestSigusr2:
    def test_install_refused_off_main_thread(self):
        import threading

        results = []
        thread = threading.Thread(
            target=lambda: results.append(flightrec.install_sigusr2())
        )
        thread.start()
        thread.join()
        assert results == [False]

    def test_handler_returns_none_on_failure(self, monkeypatch):
        monkeypatch.setattr(
            flightrec.get(), "dump",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        assert flightrec.sigusr2_handler() is None
