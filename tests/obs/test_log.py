"""Structured logging: rendering, thresholds, trace correlation."""

import io
import json

import pytest

from repro.obs import flightrec, spans
from repro.obs import log as log_mod


@pytest.fixture()
def log_stream():
    """Capture log output; restore process-wide defaults afterwards."""
    stream = io.StringIO()
    try:
        yield stream
    finally:
        log_mod.configure(level="info", json_mode=False, stream=None)


def lines_of(stream):
    return [line for line in stream.getvalue().splitlines() if line]


class TestConfigure:
    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            log_mod.configure(level="chatty")

    def test_state_round_trip(self, log_stream):
        log_mod.configure(level="debug", json_mode=True, stream=log_stream)
        state = log_mod.config_state()
        assert state == {"level": "debug", "json_mode": True}
        log_mod.configure(level="info", json_mode=False, stream=log_stream)
        log_mod.apply_state(state)
        assert log_mod.config_state() == state

    def test_apply_state_none_is_noop(self, log_stream):
        log_mod.configure(level="warning", stream=log_stream)
        log_mod.apply_state(None)
        assert log_mod.config_state()["level"] == "warning"


class TestJsonMode:
    def test_json_lines_with_sorted_keys(self, log_stream):
        log_mod.configure(level="info", json_mode=True, stream=log_stream)
        log_mod.get_logger("unit").info("hello", answer=42)
        (line,) = lines_of(log_stream)
        record = json.loads(line)
        assert record["component"] == "unit"
        assert record["event"] == "hello"
        assert record["answer"] == 42
        assert record["level"] == "info"
        assert list(record) == sorted(record)

    def test_unserializable_fields_stringified(self, log_stream):
        log_mod.configure(level="info", json_mode=True, stream=log_stream)
        log_mod.get_logger("unit").info("odd", thing=object())
        record = json.loads(lines_of(log_stream)[0])
        assert "object object" in record["thing"]


class TestTextMode:
    def test_text_line_shape(self, log_stream):
        log_mod.configure(level="info", json_mode=False, stream=log_stream)
        log_mod.get_logger("serve").info("job_done", job="j01", wall_s=0.5)
        (line,) = lines_of(log_stream)
        assert " INFO serve: job_done " in line
        assert "job=j01" in line
        assert "wall_s=0.5" in line


class TestThreshold:
    def test_below_threshold_suppressed_on_console(self, log_stream):
        log_mod.configure(level="warning", json_mode=True, stream=log_stream)
        logger = log_mod.get_logger("unit")
        logger.info("quiet")
        logger.warning("loud")
        records = [json.loads(line) for line in lines_of(log_stream)]
        assert [r["event"] for r in records] == ["loud"]

    def test_flight_recorder_sees_suppressed_records(self, log_stream):
        log_mod.configure(level="error", json_mode=True, stream=log_stream)
        recorder = flightrec.get()
        before = len(recorder)
        log_mod.get_logger("unit").debug("invisible", detail="kept")
        assert lines_of(log_stream) == []
        assert len(recorder) > before or recorder.snapshot()["records"]
        logs = [
            r for r in recorder.snapshot()["records"]
            if r["kind"] == "log" and r["data"].get("event") == "invisible"
        ]
        assert logs and logs[-1]["data"]["detail"] == "kept"

    def test_unknown_level_raises(self, log_stream):
        with pytest.raises(ValueError):
            log_mod.get_logger("unit").log("shout", "event")


class TestTraceCorrelation:
    def test_records_pick_up_ambient_span(self, log_stream):
        log_mod.configure(level="info", json_mode=True, stream=log_stream)
        with spans.span("request") as active:
            log_mod.get_logger("unit").info("inside")
        record = json.loads(lines_of(log_stream)[0])
        assert record["trace_id"] == active.trace_id
        assert record["span_id"] == active.span_id

    def test_no_span_no_trace_fields(self, log_stream):
        log_mod.configure(level="info", json_mode=True, stream=log_stream)
        log_mod.get_logger("unit").info("outside")
        record = json.loads(lines_of(log_stream)[0])
        assert "trace_id" not in record
        assert "span_id" not in record
