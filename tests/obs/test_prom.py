"""Prometheus exposition: rendering, escaping, parsing, validation."""

import pytest

from repro.obs import prom
from repro.obs.registry import MetricsRegistry


def render_one(registry, **kwargs):
    return prom.render_prometheus([registry], **kwargs)


class TestRenderCounters:
    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("jobs_submitted").inc(3)
        text = render_one(registry)
        assert "# TYPE jobs_submitted_total counter" in text
        assert "jobs_submitted_total 3" in text

    def test_labels_sorted_and_quoted(self):
        registry = MetricsRegistry()
        registry.counter("hits", z="1", a="2").inc()
        text = render_one(registry)
        assert 'hits_total{a="2",z="1"} 1' in text

    def test_help_text_precedes_type(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        text = render_one(registry, help_text={"depth": "queue depth"})
        lines = text.splitlines()
        assert lines.index("# HELP depth queue depth") < lines.index(
            "# TYPE depth gauge"
        )

    def test_empty_registry_renders_empty(self):
        assert render_one(MetricsRegistry()) == ""


class TestRenderHistograms:
    def test_cumulative_buckets_and_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = render_one(registry)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum 6.05" in text
        assert prom.validate_prometheus_text(text) == []

    def test_first_registry_wins_on_collision(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("depth").set(1)
        second.gauge("depth").set(99)
        text = prom.render_prometheus([first, second])
        assert "depth 1" in text
        assert "99" not in text
        assert prom.validate_prometheus_text(text) == []


class TestEscaping:
    @pytest.mark.parametrize(
        "raw",
        ['plain', 'back\\slash', 'quo"te', 'new\nline', '\\"\n mix'],
    )
    def test_label_value_round_trip(self, raw):
        registry = MetricsRegistry()
        registry.gauge("g", key=raw).set(1)
        samples = prom.parse_prometheus_text(render_one(registry))
        assert prom.sample_value(samples, "g", key=raw) == 1

    def test_escape_label_value(self):
        assert prom.escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'


class TestParse:
    def test_parses_names_labels_values(self):
        samples = prom.parse_prometheus_text(
            "# TYPE up gauge\n"
            'up{job="serve"} 1\n'
            "free 2.5\n"
            "big 1e3\n"
            "inf +Inf\n"
        )
        assert ("up", {"job": "serve"}, 1.0) in samples
        assert ("free", {}, 2.5) in samples
        assert ("big", {}, 1000.0) in samples
        assert samples[-1][2] == float("inf")

    @pytest.mark.parametrize(
        "doc",
        [
            "metric value-not-number\n",
            "1starts_with_digit 3\n",
            'unterminated{key="oops 1\n',
            "# TYPE bad\n",
            "# TYPE name notakind\n",
        ],
    )
    def test_malformed_raises(self, doc):
        with pytest.raises(ValueError):
            prom.parse_prometheus_text(doc)


class TestValidate:
    def test_no_samples_flagged(self):
        assert prom.validate_prometheus_text("") == ["no samples"]

    def test_duplicate_sample_flagged(self):
        doc = "# TYPE x gauge\nx 1\nx 2\n"
        problems = prom.validate_prometheus_text(doc)
        assert any("duplicate" in p for p in problems)

    def test_missing_type_flagged(self):
        problems = prom.validate_prometheus_text("orphan 1\n")
        assert any("no TYPE" in p for p in problems)

    def test_non_cumulative_buckets_flagged(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4\n"
            "h_count 5\n"
        )
        problems = prom.validate_prometheus_text(doc)
        assert any("not cumulative" in p for p in problems)

    def test_missing_inf_bucket_flagged(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_sum 4\n"
            "h_count 5\n"
        )
        problems = prom.validate_prometheus_text(doc)
        assert any("+Inf" in p for p in problems)

    def test_count_mismatch_flagged(self):
        doc = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 4\n"
            "h_count 7\n"
        )
        problems = prom.validate_prometheus_text(doc)
        assert any("_count" in p for p in problems)


class TestSampleValue:
    def test_matches_on_label_subset(self):
        samples = [
            ("depth", {"state": "idle"}, 2.0),
            ("depth", {"state": "busy"}, 1.0),
        ]
        assert prom.sample_value(samples, "depth", state="busy") == 1.0

    def test_absent_is_zero(self):
        assert prom.sample_value([], "missing") == 0.0
