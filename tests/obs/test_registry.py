"""Metrics registry: counters, gauges, histograms, bus aggregation."""

import pytest

from repro.obs.bus import EventBus
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
)


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter("hits", {})
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits", {}).inc(-1)

    def test_gauge_set_and_max(self):
        gauge = Gauge("depth", {})
        gauge.set(4)
        gauge.max(2)
        assert gauge.value == 4
        gauge.max(9)
        assert gauge.value == 9

    def test_histogram_buckets(self):
        hist = Histogram("lat", {}, buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.overflow == 1
        assert hist.count == 4
        assert hist.mean() == pytest.approx(555.5 / 4)

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", {}, buckets=(10.0, 1.0))

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("lat", {}, buckets=(10.0, 20.0))
        for _ in range(10):
            hist.observe(5.0)
        # all mass in (0, 10]: p50 lands mid-bucket, p100 at the bound
        assert hist.percentile(50.0) == 5.0
        assert hist.percentile(100.0) == 10.0

    def test_percentile_spans_buckets(self):
        hist = Histogram("lat", {}, buckets=(10.0, 20.0, 40.0))
        for value in (5.0,) * 5 + (15.0,) * 4 + (30.0,):
            hist.observe(value)
        assert hist.percentile(50.0) == 10.0
        assert 10.0 < hist.percentile(90.0) <= 20.0
        assert 20.0 < hist.percentile(99.0) <= 40.0

    def test_percentile_overflow_reports_last_bound(self):
        hist = Histogram("lat", {}, buckets=(1.0,))
        hist.observe(100.0)
        assert hist.percentile(99.0) == 1.0

    def test_percentile_empty_is_zero(self):
        assert Histogram("lat", {}).percentile(95.0) == 0.0

    def test_percentile_out_of_range_rejected(self):
        hist = Histogram("lat", {})
        with pytest.raises(ValueError):
            hist.percentile(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_summary_keys(self):
        hist = Histogram("lat", {}, buckets=(10.0,))
        hist.observe(5.0)
        summary = hist.summary()
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_histogram_summary_all_zero(self):
        hist = Histogram("lat", {}, buckets=(1.0, 10.0))
        assert hist.summary() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert hist.mean() == 0.0
        assert hist.count == 0 and hist.overflow == 0

    def test_single_sample_percentiles(self):
        hist = Histogram("lat", {}, buckets=(10.0, 20.0))
        hist.observe(15.0)
        # one sample in (10, 20]: every percentile interpolates there
        for q in (1.0, 50.0, 99.0):
            assert 10.0 < hist.percentile(q) <= 20.0
        assert hist.percentile(100.0) == 20.0

    def test_observation_on_bucket_boundary_is_inclusive(self):
        hist = Histogram("lat", {}, buckets=(10.0, 20.0))
        hist.observe(10.0)   # le-boundary lands in the first bucket
        hist.observe(20.0)   # last finite bound, not overflow
        assert hist.counts == [1, 1]
        assert hist.overflow == 0

    def test_all_overflow_percentile_is_last_bound(self):
        hist = Histogram("lat", {}, buckets=(1.0, 2.0))
        for _ in range(5):
            hist.observe(100.0)
        assert hist.percentile(50.0) == 2.0
        assert hist.overflow == 5
        assert hist.counts == [0, 0]


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", level="l1")
        b = registry.counter("hits", level="l1")
        assert a is b
        assert registry.counter("hits", level="l2") is not a
        assert len(registry) == 2

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_flat_names_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("hits", level="l1", scheme="C").inc(3)
        registry.gauge("depth").set(7)
        flat = registry.flat()
        assert flat == {"hits{level=l1,scheme=C}": 3.0, "depth": 7.0}

    def test_to_dict_includes_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        dump = registry.to_dict()
        assert dump["counters"] == [] and dump["gauges"] == []
        (hist,) = dump["histograms"]
        assert hist["buckets"] == [1.0, 2.0]
        assert hist["counts"] == [0, 1]
        assert hist["count"] == 1
        assert {"p50", "p95", "p99"} <= set(hist)


class TestMetricsSink:
    def make(self, scheme=None):
        bus = EventBus()
        registry = MetricsRegistry()
        bus.attach(MetricsSink(registry, scheme=scheme))
        return bus, registry

    def test_counts_events_by_kind(self):
        bus, registry = self.make()
        bus.emit("region_start", 0.0, function="main", header="loop")
        bus.emit("epoch_start", 1.0, epoch=0)
        bus.emit("commit", 5.0, epoch=0)
        flat = registry.flat()
        assert flat["events{kind=epoch_start,region=0}"] == 1.0
        assert flat["events{kind=commit,region=0}"] == 1.0

    def test_epoch_cycles_histogram(self):
        bus, registry = self.make(scheme="C")
        bus.emit("region_start", 0.0, function="main", header="loop")
        bus.emit("epoch_start", 10.0, epoch=0)
        bus.emit("commit", 35.0, epoch=0)
        hists = registry.to_dict()["histograms"]
        (epoch_hist,) = [h for h in hists if h["name"] == "epoch_cycles"]
        assert epoch_hist["labels"]["outcome"] == "commit"
        assert epoch_hist["labels"]["scheme"] == "C"
        assert epoch_hist["sum"] == 25.0

    def test_violation_reasons_counted(self):
        bus, registry = self.make()
        bus.emit("violation", 1.0, epoch=2, reason="store", load_iid=4)
        bus.emit("violation", 2.0, epoch=3, reason="store", load_iid=4)
        bus.emit("violation", 3.0, epoch=4, reason="commit", load_iid=5)
        flat = registry.flat()
        assert flat["violations{reason=store}"] == 2.0
        assert flat["violations{reason=commit}"] == 1.0

    def test_stall_cycles_by_cause(self):
        bus, registry = self.make()
        bus.emit("fwd_unblock", 5.0, epoch=1, channel="ch", msg_kind="value",
                 stall=4.0)
        bus.emit("sync_unblock", 9.0, epoch=2, stall=2.0)
        hists = {
            h["labels"]["cause"]: h
            for h in registry.to_dict()["histograms"]
            if h["name"] == "stall_cycles"
        }
        assert hists["fwd"]["sum"] == 4.0
        assert hists["sync"]["sum"] == 2.0
