"""Spans: ids, context propagation, traceparent, recording."""

import pytest

from repro.obs import spans


class TestIds:
    def test_trace_id_is_128_bit_hex(self):
        trace_id = spans.new_trace_id()
        assert len(trace_id) == 32
        int(trace_id, 16)

    def test_span_id_is_64_bit_hex(self):
        span_id = spans.new_span_id()
        assert len(span_id) == 16
        int(span_id, 16)

    def test_ids_are_unique(self):
        assert len({spans.new_trace_id() for _ in range(64)}) == 64


class TestTraceparent:
    def test_round_trip(self):
        context = spans.SpanContext(
            trace_id="ab" * 16, span_id="cd" * 8
        )
        parsed = spans.parse_traceparent(context.traceparent())
        assert parsed == context

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-short-cdcdcdcdcdcdcdcd-01",
            "00-" + "ab" * 16 + "-short-01",
            "00-" + "zz" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",   # zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span
        ],
    )
    def test_invalid_headers_rejected(self, header):
        assert spans.parse_traceparent(header) is None

    def test_context_from_dict_tolerates_garbage(self):
        assert spans.SpanContext.from_dict(None) is None
        assert spans.SpanContext.from_dict({"trace_id": "x"}) is None
        context = spans.SpanContext.from_dict(
            {"trace_id": "t", "span_id": "s"}
        )
        assert context.trace_id == "t" and context.span_id == "s"


class TestSpan:
    def test_child_inherits_trace(self):
        parent = spans.Span.start("parent")
        child = spans.Span.start("child", parent=parent.context)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_end_is_idempotent(self):
        span = spans.Span.start("op")
        span.end(status="ok")
        first_end = span.end_s
        span.end(status="changed")
        assert span.end_s == first_end
        assert span.status == "ok"

    def test_to_dict_schema(self):
        span = spans.Span.start("op", component="worker").end()
        payload = span.to_dict()
        assert payload["schema"] == spans.SPAN_SCHEMA_VERSION
        assert payload["name"] == "op"
        assert payload["attrs"]["component"] == "worker"
        assert payload["end_s"] >= payload["start_s"]

    def test_duration_zero_until_ended(self):
        span = spans.Span.start("op")
        assert span.duration_s == 0.0
        span.end()
        assert span.duration_s >= 0.0


class TestContextManager:
    def test_ambient_context_nesting(self):
        assert spans.current_context() is None
        with spans.span("outer") as outer:
            assert spans.current_context().span_id == outer.span_id
            with spans.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert spans.current_context().span_id == outer.span_id
        assert spans.current_context() is None

    def test_explicit_parent_beats_ambient(self):
        remote = spans.SpanContext(trace_id="ff" * 16, span_id="ee" * 8)
        with spans.span("outer"):
            with spans.span("adopted", parent=remote) as span:
                assert span.trace_id == remote.trace_id
                assert span.parent_id == remote.span_id

    def test_inherit_false_starts_fresh_trace(self):
        with spans.span("outer") as outer:
            with spans.span("fresh", inherit=False) as fresh:
                assert fresh.trace_id != outer.trace_id
                assert fresh.parent_id is None

    def test_exception_marks_error_and_propagates(self):
        with spans.recording() as collected:
            with pytest.raises(RuntimeError):
                with spans.span("boom"):
                    raise RuntimeError("nope")
        (payload,) = collected
        assert payload["status"] == "error"
        assert "RuntimeError" in payload["attrs"]["error"]


class TestRecording:
    def test_collects_finished_spans_in_end_order(self):
        with spans.recording() as collected:
            with spans.span("outer"):
                with spans.span("inner"):
                    pass
        assert [p["name"] for p in collected] == ["inner", "outer"]

    def test_nothing_collected_outside_recording(self):
        with spans.recording() as collected:
            pass
        spans.Span.start("orphan").end()
        assert collected == []
