"""Fixtures for the serve tests: cache isolation plus daemon boot.

Daemon tests default to the inline (``workers=0``) pool so the suite
stays fast and in-process; one test exercises a real process pool.
Every daemon gets its own tmp cache root, and the process-wide stores
are disabled afterwards (mirrors ``tests/experiments/conftest.py``).
"""

import pytest

from repro.experiments import artifacts as artifacts_mod
from repro.experiments import cache as cache_mod
from repro.experiments import metrics as metrics_mod
from repro.experiments import runner
from repro.serve import pool as pool_mod
from repro.serve.daemon import EmbeddedDaemon, ServeConfig


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    yield
    cache_mod.configure(False)
    artifacts_mod.configure(False)
    artifacts_mod.reset_counters()
    metrics_mod.reset()


@pytest.fixture(autouse=True)
def fresh_warm_state():
    """Cold bundle memos per test, restored afterwards.

    Serve tests assert cold-vs-warm provenance ('computed' first, then
    'memo') and artifact-store miss counts; process-wide memos warmed
    by earlier tests would make those assertions flaky.
    """
    saved = dict(runner._BUNDLES)
    runner._BUNDLES.clear()
    pool_mod._WARM_BUNDLES.clear()
    yield
    pool_mod._WARM_BUNDLES.clear()
    runner._BUNDLES.clear()
    runner._BUNDLES.update(saved)


@pytest.fixture
def make_daemon(tmp_path):
    """Factory: boot an embedded daemon, yield its base URL helper.

    Returns ``(embedded, base_url)``; every daemon booted through the
    factory is drained at teardown.
    """
    booted = []

    def _boot(**overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 0)
        overrides.setdefault("cache_root", str(tmp_path / "serve-cache"))
        embedded = EmbeddedDaemon(ServeConfig(**overrides))
        base_url = embedded.start()
        booted.append(embedded)
        return embedded, base_url

    yield _boot
    for embedded in booted:
        embedded.stop()


@pytest.fixture
def daemon_url(make_daemon):
    """One inline-pool daemon for the test."""
    _embedded, base_url = make_daemon()
    return base_url
