"""End-to-end daemon tests over real HTTP.

The load-bearing contract: any (workload, bar, threshold) served by
the daemon is **byte-identical** to the batch runner's output — both
the canonical ``SimResult`` payload and the typed JSONL event stream.
Plus the service semantics: lifecycle, single-flight warm-up,
admission control (429), drain (503), and per-job artifact-counter
flush through a real process pool.
"""

import threading

import pytest

from repro.experiments import cache as cache_mod
from repro.experiments import trace as trace_mod
from repro.experiments.runner import bundle_for
from repro.serve.client import (
    DaemonDraining,
    JobRejected,
    ServeClient,
    ServeError,
)
from repro.serve.protocol import (
    DONE,
    JobRequest,
    canonical_event_lines,
    canonical_events_bytes,
    canonical_result_bytes,
)

#: The figure-10 bar sample the serve-smoke CI job pins.
FIG10_BARS = ("U", "P", "H", "C", "B")


def _batch_result_bytes(workload: str, bar: str, threshold: float) -> bytes:
    """The batch runner's canonical payload, computed in-process."""
    cache_mod.configure(False)
    bundle = bundle_for(workload, threshold=threshold)
    return canonical_result_bytes(bundle.simulate(bar).to_state())


def test_results_byte_identical_to_batch_runner(daemon_url):
    with ServeClient(daemon_url) as client:
        for bar in FIG10_BARS:
            status = client.run(JobRequest(workload="go", bar=bar))
            assert status["state"] == DONE, status.get("error")
            served = client.result_bytes(status["job"])
            assert served == _batch_result_bytes("go", bar, 0.05), bar


def test_event_stream_byte_identical_to_batch_trace(daemon_url):
    with ServeClient(daemon_url) as client:
        status = client.run(JobRequest(workload="go", bar="C", events=True))
        assert status["state"] == DONE, status.get("error")
        assert status["source"] == "traced"
        served = client.events_bytes(status["job"])
    run = trace_mod.run_traced("go", bar="C", threshold=0.05)
    expected = canonical_events_bytes(
        canonical_event_lines(
            run.events,
            meta={
                "workload": "go",
                "bar": "C",
                "num_cores": run.num_cores,
                "issue_width": run.issue_width,
            },
        )
    )
    assert served == expected


def test_status_lifecycle_and_artifact_counters(daemon_url):
    with ServeClient(daemon_url) as client:
        first = client.run(JobRequest(workload="go", bar="C"))
        assert first["state"] == DONE
        assert first["source"] == "computed"
        assert first["wall_s"] > 0
        # The cold job's pipeline records the compile it triggered,
        # and its artifact delta shows the store miss.
        assert any(j["kind"] == "compile" for j in first["pipeline"])
        assert first["artifacts"]["misses"] == 1

        second = client.run(JobRequest(workload="go", bar="C"))
        assert second["source"] == "memo"  # warm worker: no recompute
        assert second["artifacts"] == {
            "corrupt": 0, "hits": 0, "misses": 0, "version_mismatch": 0,
        }

        stats = client.stats()
        assert stats["jobs"]["completed"] == 2
        assert stats["jobs"]["states"] == {"done": 2}
        assert stats["latency"]["C"]["count"] == 2
        assert stats["queue"]["rejected"] == 0


def test_warm_worker_serves_vector_jobs_without_recompiling(daemon_url):
    """Second vector job on a warm worker: zero kernel compiles.

    U and H share the baseline module and the default cost signature,
    so the second request simulates for real (``computed``, distinct
    memo key) but every region kernel must come from the worker's
    in-process codegen memo — ``codegen.compiles == 0``.
    """
    with ServeClient(daemon_url) as client:
        first = client.run(
            JobRequest(workload="go", bar="U", backend="vector")
        )
        assert first["state"] == DONE, first.get("error")
        assert first["source"] == "computed"
        assert "compiles" in first["codegen"]

        second = client.run(
            JobRequest(workload="go", bar="H", backend="vector")
        )
        assert second["state"] == DONE, second.get("error")
        assert second["source"] == "computed"
        assert second["codegen"]["compiles"] == 0


def test_concurrent_cold_submits_compile_once(daemon_url):
    """Six racing submits for one cold key -> exactly one compute."""
    statuses = []
    lock = threading.Lock()

    def submit():
        with ServeClient(daemon_url) as client:
            status = client.run(JobRequest(workload="gzip_comp", bar="U"))
            with lock:
                statuses.append(status)

    threads = [threading.Thread(target=submit) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120.0)
    assert len(statuses) == 6
    assert all(s["state"] == DONE for s in statuses)
    sources = sorted(s["source"] for s in statuses)
    assert sources == ["computed"] + ["memo"] * 5
    # All six agree byte-for-byte, of course.
    with ServeClient(daemon_url) as client:
        payloads = {client.result_bytes(s["job"]) for s in statuses}
    assert len(payloads) == 1


def test_queue_full_maps_to_429(make_daemon):
    _embedded, base_url = make_daemon(queue_size=0)
    with ServeClient(base_url) as client:
        with pytest.raises(JobRejected) as excinfo:
            client.submit(JobRequest(workload="go"))
        assert excinfo.value.status == 429


def test_drain_finishes_inflight_then_refuses_submits(make_daemon):
    embedded, base_url = make_daemon()
    with ServeClient(base_url) as client:
        status = client.run(JobRequest(workload="go", bar="U"))
        assert status["state"] == DONE
        drained = client.drain()
        assert drained["drained"] is True
        assert drained["jobs_completed"] == 1
    embedded._thread.join(10.0)
    assert not embedded._thread.is_alive()  # daemon exited cleanly
    # A drained daemon accepts nothing (connection refused counts too).
    with pytest.raises((DaemonDraining, ServeError, OSError)):
        with ServeClient(base_url, timeout=2.0) as client:
            client.submit(JobRequest(workload="go"))


def test_http_errors(daemon_url):
    with ServeClient(daemon_url) as client:
        # 400: invalid payload.
        status, payload = client._json(
            "POST", "/v1/jobs", {"workload": "no-such-workload"}
        )
        assert status == 400 and "error" in payload
        # 404: unknown job / unknown route.
        assert client._json("GET", "/v1/jobs/j999")[0] == 404
        assert client._json("GET", "/v1/nope")[0] == 404
        # 405: wrong method on a job route.
        assert client._json("POST", "/v1/jobs/j999/result")[0] == 405
        # 404 events for a job submitted without events=true.
        done = client.run(JobRequest(workload="go", bar="U"))
        status, payload = client._json(
            "GET", f"/v1/jobs/{done['job']}/events"
        )
        assert status == 404


def test_process_pool_serves_and_flushes_counters(make_daemon):
    """A real worker process: results match and counters flow back."""
    _embedded, base_url = make_daemon(workers=1)
    with ServeClient(base_url) as client:
        first = client.run(JobRequest(workload="go", bar="U"), timeout=180.0)
        assert first["state"] == DONE, first.get("error")
        assert first["worker_pid"] != 0
        served = client.result_bytes(first["job"])
        # Counter flush is per job, not at pool shutdown: the worker's
        # store miss is visible in daemon stats while it keeps running.
        assert client.stats()["artifacts"]["misses"] == 1
        second = client.run(JobRequest(workload="go", bar="U"))
        assert second["source"] == "memo"
    assert served == _batch_result_bytes("go", "U", 0.05)
