"""Unit tests for the minimal HTTP layer and the API schema."""

import asyncio
import json

import pytest

from repro.serve import http as http_mod
from repro.serve.protocol import JobRequest, ProtocolError


def _parse(raw: bytes):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await http_mod.read_request(reader)

    return asyncio.run(_run())


def test_read_request_parses_line_headers_and_body():
    body = json.dumps({"workload": "go"}).encode()
    raw = (
        b"POST /v1/jobs?debug=1 HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    request = _parse(raw)
    assert request.method == "POST"
    assert request.path == "/v1/jobs"
    assert request.query == {"debug": "1"}
    assert request.headers["content-type"] == "application/json"
    assert request.json() == {"workload": "go"}
    assert request.keep_alive


def test_read_request_eof_returns_none():
    assert _parse(b"") is None


@pytest.mark.parametrize(
    "raw",
    [
        b"NOT-HTTP\r\n\r\n",                       # malformed request line
        b"GET / SPDY/3\r\n\r\n",                   # bad version
        b"GET / HTTP/1.1\r\nbroken header\r\n\r\n",  # header w/o colon
        b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",  # bad length
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ],
)
def test_read_request_rejects_malformed(raw):
    with pytest.raises(http_mod.BadRequest):
        _parse(raw)


def test_read_request_rejects_oversized_body():
    raw = (
        b"POST / HTTP/1.1\r\n"
        + f"Content-Length: {http_mod.MAX_BODY_BYTES + 1}\r\n\r\n".encode()
    )
    with pytest.raises(http_mod.BadRequest):
        _parse(raw)


def test_response_encoding_round_trips():
    response = http_mod.HTTPResponse.json({"ok": True}, status=202)
    encoded = response.encode(keep_alive=False)
    head, _, body = encoded.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 202 Accepted")
    assert b"Connection: close" in head
    assert json.loads(body) == {"ok": True}
    assert f"Content-Length: {len(body)}".encode() in head


def test_route_match_captures_segments():
    assert http_mod.route_match("/v1/jobs/j42", "/v1/jobs/{id}") == ("j42",)
    assert http_mod.route_match(
        "/v1/jobs/j42/result", "/v1/jobs/{id}/result"
    ) == ("j42",)
    assert http_mod.route_match("/v1/jobs", "/v1/jobs/{id}") is None
    assert http_mod.route_match("/v1/jobs/j42/other", "/v1/jobs/{id}") is None


# ---------------------------------------------------------------------------
# JobRequest validation
# ---------------------------------------------------------------------------


def test_job_request_round_trip_and_normalization():
    request = JobRequest.from_dict(
        {"workload": "go", "bar": "u", "threshold": 0.1, "events": True}
    )
    assert request == JobRequest(
        workload="go", bar="U", threshold=0.1, events=True
    )
    assert JobRequest.from_dict(request.to_dict()) == request
    assert request.key == ("go", 0.1)


@pytest.mark.parametrize(
    "payload",
    [
        [],                                        # not an object
        {},                                        # missing workload
        {"workload": "no-such-workload"},
        {"workload": "go", "bar": "Z"},
        {"workload": "go", "threshold": 0.0},
        {"workload": "go", "threshold": "high"},
        {"workload": "go", "threshold": True},
        {"workload": "go", "events": "yes"},
        {"workload": "go", "extra": 1},            # unknown field
    ],
)
def test_job_request_rejects_invalid(payload):
    with pytest.raises(ProtocolError):
        JobRequest.from_dict(payload)


# ---------------------------------------------------------------------------
# per-job machine / predictor overrides
# ---------------------------------------------------------------------------


def test_job_request_machine_override_round_trip():
    request = JobRequest.from_dict({
        "workload": "go", "bar": "P",
        "machine": {"num_cores": 8, "signal_buffer_entries": 4},
        "predictor": "stride",
    })
    assert dict(request.machine) == {
        "num_cores": 8, "signal_buffer_entries": 4,
    }
    assert request.predictor == "stride"
    assert JobRequest.from_dict(request.to_dict()) == request
    overrides = request.config_overrides()
    assert overrides["num_cores"] == 8
    assert overrides["predictor"] == "stride"


def test_job_request_machine_integral_floats_normalize():
    """JSON clients send 8.0; core counts must come back as int."""
    request = JobRequest.from_dict(
        {"workload": "go", "machine": {"num_cores": 8.0}}
    )
    value = dict(request.machine)["num_cores"]
    assert value == 8 and isinstance(value, int)


def test_job_request_default_has_no_overrides():
    request = JobRequest.from_dict({"workload": "go"})
    assert request.machine == () and request.predictor is None
    assert request.config_overrides() == {}
    assert "machine" not in request.to_dict()


@pytest.mark.parametrize(
    "payload,match",
    [
        ({"workload": "go", "machine": [1, 2]}, "machine"),
        ({"workload": "go", "machine": {"nope": 1}}, "machine"),
        ({"workload": "go", "machine": {"num_cores": "four"}}, "machine"),
        ({"workload": "go", "machine": {"num_cores": 0}},
         "invalid machine config"),
        ({"workload": "go", "machine": {"signal_buffer_entries": 0}},
         "invalid machine config"),
        ({"workload": "go", "predictor": "nope"}, "predictor"),
    ],
)
def test_job_request_rejects_bad_overrides(payload, match):
    with pytest.raises(ProtocolError, match=match):
        JobRequest.from_dict(payload)


def test_served_override_matches_direct_simulation():
    """An override job through the pool equals an in-process run."""
    from repro.experiments.runner import bundle_for
    from repro.serve.pool import execute_request
    from repro.tlssim.config import SimConfig

    request = JobRequest(
        workload="go", bar="P",
        machine=(("num_cores", 2),), predictor="stride",
    )
    outcome = execute_request(request)
    assert outcome["ok"], outcome.get("error")
    direct = bundle_for("go", 0.05).simulate(
        "P", base=SimConfig(num_cores=2, predictor="stride")
    )
    assert outcome["result"] == direct.to_state()
