"""Tests for the load generator and its bench-gate payload."""

import pytest

from repro.experiments.bench import compare_bench
from repro.serve.loadgen import (
    LoadgenConfig,
    format_loadgen,
    parse_duration,
    run_loadgen,
)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("10s", 10.0),
        ("2m", 120.0),
        ("500ms", 0.5),
        ("1.5h", 5400.0),
        ("3", 3.0),
        (" 0.25s ", 0.25),
    ],
)
def test_parse_duration(text, expected):
    assert parse_duration(text) == expected


def test_parse_duration_rejects_garbage():
    with pytest.raises(ValueError):
        parse_duration("fast")


def test_loadgen_payload_shape_and_acceptance(tmp_path):
    payload = run_loadgen(
        LoadgenConfig(
            workloads=("go",),
            bars=("U",),
            duration_s=1.0,
            concurrency=2,
            workers=0,
            cache_root=str(tmp_path / "loadgen-cache"),
        )
    )
    assert payload["benchmark"] == "serve-loadgen"
    assert len(payload["cold"]) == 1
    assert payload["cold"][0]["source"] == "computed"
    warm = payload["warm"]
    assert warm["completed"] > 0 and warm["errors"] == 0
    assert warm["sources"].get("memo", 0) > 0
    latency = payload["latency"]
    assert set(latency) >= {"p50", "p95", "p99", "mean", "count"}
    assert latency["p50"] <= latency["p95"] <= latency["p99"]

    # Warm percentiles split by provenance: memo-hit samples must be
    # summarized apart from first-touch computed ones, and each cell
    # carries its own per-source split.
    by_source = payload["latency_by_source"]
    assert "memo" in by_source
    assert by_source["memo"]["count"] == warm["sources"]["memo"]
    for cell_summary in payload["latency_by_cell"].values():
        for source, summary in cell_summary["by_source"].items():
            assert source in warm["sources"]
            assert summary["count"] >= 1

    # The acceptance criterion: warm p50 beats one cold request —
    # gated on memo-hit samples only.
    acceptance = payload["acceptance"]
    assert acceptance["gated_on"] == "memo"
    assert acceptance["gate_count"] == warm["sources"]["memo"]
    assert acceptance["warm_p50_below_cold"] is True
    assert acceptance["warm_p50_s"] < acceptance["cold_wall_s"]
    assert acceptance["warm_p50_s"] == by_source["memo"]["p50"]

    # speedups cells are shaped for the existing bench compare gate.
    [cell] = payload["speedups"]
    assert cell["workload"] == "go" and cell["scheme"] == "serve-U"
    assert cell["fast_instrs_per_sec"] > cell["slow_instrs_per_sec"]

    comparison = compare_bench(payload, payload, tolerance=0.2)
    assert comparison["regressions"] == 0
    statuses = {c["status"] for c in comparison["cells"]}
    assert statuses == {"ok"}

    # A baseline 10x faster flags a regression through the same gate.
    inflated = {
        "speedups": [
            dict(cell, fast_instrs_per_sec=cell["fast_instrs_per_sec"] * 10)
        ]
    }
    comparison = compare_bench(payload, inflated, tolerance=0.2)
    assert comparison["regressions"] == 1

    report = format_loadgen(payload)
    assert "p50=" in report and "acceptance:" in report
