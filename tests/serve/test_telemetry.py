"""Service telemetry: spans through serve, metrics, flightrec, top.

The profiled/unprofiled byte-identity check uses a module-level named
parametrize decorator (the pyinstrument C-vs-Python setstatprofile
idiom): every test it marks runs both ways.
"""

import json

import pytest

from repro.obs import flightrec
from repro.obs import prom as prom_mod
from repro.obs.export import merged_chrome_trace, validate_chrome_trace
from repro.obs.events import Event
from repro.serve import top as top_mod
from repro.serve.client import ServeClient, ServeError
from repro.serve.pool import execute_request
from repro.serve.protocol import DONE, JobRequest, canonical_result_bytes

#: Run the test once without and once with the in-worker profiler —
#: telemetry and profiling must never change what a job computes.
parametrize_profile = pytest.mark.parametrize("profile", [False, True])


REQUEST = dict(workload="go", bar="C", threshold=0.05)


class TestExecuteRequestTelemetry:
    @parametrize_profile
    def test_result_bytes_identical_with_and_without_profile(
        self, tmp_path, profile, fresh_warm_state
    ):
        baseline = execute_request(JobRequest(**REQUEST))
        assert baseline["ok"], baseline.get("error")
        outcome = execute_request(
            JobRequest(**REQUEST, profile=profile),
            job_id="jprof",
            cache_root=str(tmp_path),
        )
        assert outcome["ok"], outcome.get("error")
        assert canonical_result_bytes(
            outcome["result"]
        ) == canonical_result_bytes(baseline["result"])
        if profile:
            assert "Ordered by: cumulative time" in outcome["profile"]["text"]
            assert outcome["profile"]["path"].endswith("jprof.pstats")
        else:
            assert "profile" not in outcome

    def test_spans_ship_in_outcome_under_given_trace(self, tmp_path):
        trace_ctx = {"trace_id": "ab" * 16, "span_id": "cd" * 8}
        outcome = execute_request(
            JobRequest(**REQUEST), job_id="j1", trace_ctx=trace_ctx,
            cache_root=str(tmp_path),
        )
        assert outcome["ok"]
        names = {s["name"] for s in outcome["spans"]}
        assert {"worker.execute", "bundle.warm", "simulate"} <= names
        assert all(s["trace_id"] == "ab" * 16 for s in outcome["spans"])
        (execute,) = [
            s for s in outcome["spans"] if s["name"] == "worker.execute"
        ]
        assert execute["parent_id"] == "cd" * 8
        assert execute["attrs"]["job"] == "j1"


class TestDaemonSpans:
    def test_trace_spans_and_merged_trace(self, daemon_url):
        with ServeClient(daemon_url) as client:
            job_id = client.submit(
                JobRequest(**REQUEST, events=True),
                traceparent="00-" + "ab" * 16 + "-" + "cd" * 8 + "-01",
            )
            status = client.wait(job_id)
            assert status["state"] == DONE
            assert status["trace_id"] == "ab" * 16
            trace = client.spans(job_id)
            event_bytes = client.events_bytes(job_id)

        names = [s["name"] for s in trace["spans"]]
        for expected in (
            "http.submit", "job.queued", "batch.execute", "worker.execute",
        ):
            assert expected in names, names
        assert all(s["trace_id"] == "ab" * 16 for s in trace["spans"])

        lines = event_bytes.decode().splitlines()
        header = json.loads(lines[0])
        events = [Event.from_dict(json.loads(line)) for line in lines[1:]]
        payload = merged_chrome_trace(
            trace["spans"],
            events=events,
            num_cores=header.get("num_cores", 4),
            title="telemetry test",
            trace_id=trace["trace_id"],
        )
        assert validate_chrome_trace(payload) == []
        pids = {e.get("pid") for e in payload["traceEvents"]}
        assert {0, 1} <= pids  # sim track and service track
        assert payload["metadata"]["trace_id"] == "ab" * 16

    def test_fresh_trace_when_no_traceparent(self, daemon_url):
        with ServeClient(daemon_url) as client:
            status = client.run(JobRequest(**REQUEST))
            assert len(status["trace_id"]) == 32
            trace = client.spans(status["job"])
        assert trace["trace_id"] == status["trace_id"]
        assert trace["spans"]


class TestMetricsEndpoint:
    def test_exposition_is_valid_prometheus(self, daemon_url):
        with ServeClient(daemon_url) as client:
            client.run(JobRequest(**REQUEST))
            text = client.metrics_text()
        assert prom_mod.validate_prometheus_text(text) == []
        samples = prom_mod.parse_prometheus_text(text)
        assert prom_mod.sample_value(
            samples, "serve_jobs_total", state=DONE
        ) >= 1.0
        assert prom_mod.sample_value(
            samples, "serve_worker_states", state="idle"
        ) >= 1.0
        names = {name for name, _labels, _value in samples}
        assert "serve_queue_depth" in names
        assert "serve_job_seconds_bucket" in names

    def test_content_type(self, daemon_url):
        with ServeClient(daemon_url) as client:
            status, _data, content_type = client._request(
                "GET", "/v1/metrics"
            )
        assert status == 200
        assert content_type == prom_mod.CONTENT_TYPE


class TestFlightrecEndpoint:
    def test_dump_writes_schema_versioned_json(self, daemon_url):
        with ServeClient(daemon_url) as client:
            client.run(JobRequest(**REQUEST))
            payload = client.flightrec_dump()
        assert payload["dumped"]
        for path in payload["dumped"]:
            with open(path) as handle:
                dump = json.load(handle)
            assert dump["schema"] == flightrec.DUMP_SCHEMA_VERSION
            assert dump["stream"] == "repro.obs.flightrec"
            kinds = {r["kind"] for r in dump["records"]}
            assert "span" in kinds or "log" in kinds


class TestProfileEndpoint:
    def test_profile_text_for_profiled_job(self, daemon_url):
        with ServeClient(daemon_url) as client:
            status = client.run(JobRequest(**REQUEST, profile=True))
            assert status["state"] == DONE
            assert "profile" in status
            text = client.profile_text(status["job"])
        assert "cumulative" in text

    def test_404_for_unprofiled_job(self, daemon_url):
        with ServeClient(daemon_url) as client:
            status = client.run(JobRequest(**REQUEST))
            with pytest.raises(ServeError) as excinfo:
                client.profile_text(status["job"])
        assert excinfo.value.status == 404


class TestWorkerStates:
    def test_stats_carry_worker_states(self, daemon_url):
        with ServeClient(daemon_url) as client:
            client.run(JobRequest(**REQUEST))
            stats = client.stats()
        states = stats["worker_states"]
        assert len(states) == stats["workers"] >= 1
        for state in states:
            assert state["state"] in ("idle", "busy")
            assert isinstance(state["pid"], int)
        assert sum(s["jobs"] for s in states) >= 1


class TestTop:
    def test_snapshot_and_render(self, daemon_url):
        with ServeClient(daemon_url) as client:
            client.run(JobRequest(**REQUEST))
        snap = top_mod.snapshot(daemon_url)
        assert snap["health"]["status"] in ("ok", "draining")
        assert snap["samples"]
        text = top_mod.render(snap)
        assert "queue" in text
        assert "worker" in text
        assert "go@0.05" in text or "idle" in text

    def test_run_top_once(self, daemon_url, capsys):
        assert top_mod.run_top(daemon_url, once=True) == 0
        out = capsys.readouterr().out
        assert "queue" in out
