"""Fixtures for the stability (soak) tier.

``memory_tracker`` snapshots tracemalloc usage over a soak and reports
the growth ratio — the gate that catches unbounded growth in a
long-lived daemon (leaked job records, growing metrics collectors,
per-request allocations that never die).
"""

import pytest

from repro.experiments import artifacts as artifacts_mod
from repro.experiments import cache as cache_mod
from repro.experiments import metrics as metrics_mod


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    yield
    cache_mod.configure(False)
    artifacts_mod.configure(False)
    artifacts_mod.reset_counters()
    metrics_mod.reset()


@pytest.fixture
def memory_tracker():
    """Track memory usage over time (tracemalloc snapshots)."""
    import tracemalloc

    class MemoryTracker:
        def __init__(self):
            self._snapshots = []
            tracemalloc.start()

        def snapshot(self, timestamp: float) -> int:
            """Take a memory snapshot and return current usage."""
            current, _peak = tracemalloc.get_traced_memory()
            self._snapshots.append((timestamp, current))
            return current

        def get_growth_ratio(self) -> float:
            """Memory growth ratio (final / initial)."""
            if len(self._snapshots) < 2:
                return 1.0
            initial = self._snapshots[0][1]
            final = self._snapshots[-1][1]
            return final / initial if initial > 0 else 1.0

        def stop(self) -> None:
            tracemalloc.stop()

    tracker = MemoryTracker()
    yield tracker
    tracker.stop()
