"""Soak the serve daemon: repeated warm submits must not leak.

A long-lived daemon's failure mode is slow growth — job records that
are never evicted, per-request metrics that accumulate, worker memos
that balloon.  This tier hammers one embedded daemon with warm submits
(the steady-state workload of a deployment) and gates on:

* zero failed jobs over the whole soak,
* results staying byte-identical from first to last iteration,
* tracemalloc growth ratio below a small bound once warm,
* the job-record retention cap actually bounding the daemon's map.

Iteration count scales with ``REPRO_SOAK_ITERS`` (default 300 — about
a minute; the nightly workflow raises it).
"""

import os
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.daemon import EmbeddedDaemon, ServeConfig
from repro.serve.protocol import DONE, JobRequest

SOAK_ITERS = int(os.environ.get("REPRO_SOAK_ITERS", "300"))

#: Allowed tracemalloc growth once warm.  The daemon retains a bounded
#: window of job records, so steady state should be nearly flat; 1.5x
#: leaves room for allocator noise while catching real leaks (an
#: unbounded jobs map grows past 2x within a few hundred iterations).
MAX_GROWTH_RATIO = 1.5


@pytest.mark.stability
def test_soak_warm_submits_do_not_leak(tmp_path, memory_tracker):
    config = ServeConfig(
        port=0,
        workers=0,
        retain_jobs=64,
        cache_root=str(tmp_path / "soak-cache"),
    )
    embedded = EmbeddedDaemon(config)
    base_url = embedded.start()
    requests = [
        JobRequest(workload="go", bar="U"),
        JobRequest(workload="go", bar="C"),
    ]
    try:
        with ServeClient(base_url) as client:
            # Warm-up: pay the compiles AND fill the job-record
            # retention window, then baseline the tracker — the first
            # ``retain_jobs`` records are legitimate bounded growth;
            # the gate measures steady state beyond it.
            reference = {}
            for request in requests:
                status = client.run(request)
                assert status["state"] == DONE, status.get("error")
                reference[request.bar] = client.result_bytes(status["job"])
            warmup = config.retain_jobs + 16
            for i in range(warmup):
                status = client.run(requests[i % len(requests)])
                assert status["state"] == DONE, status.get("error")
            memory_tracker.snapshot(time.monotonic())

            last = {}
            for i in range(SOAK_ITERS):
                request = requests[i % len(requests)]
                status = client.run(request)
                assert status["state"] == DONE, status.get("error")
                assert status["source"] == "memo"
                last[request.bar] = client.result_bytes(status["job"])
                if i % 50 == 49:
                    memory_tracker.snapshot(time.monotonic())

            memory_tracker.snapshot(time.monotonic())
            # Determinism held from first to last warm submit.
            assert last == {bar: reference[bar] for bar in last}

            stats = client.stats()
            assert stats["jobs"]["completed"] == (
                SOAK_ITERS + warmup + len(requests)
            )
            # Retention cap bounds the daemon's job map.
            assert stats["jobs"]["retained"] <= config.retain_jobs + 1
            assert stats["queue"]["rejected"] == 0

        growth = memory_tracker.get_growth_ratio()
        assert growth < MAX_GROWTH_RATIO, (
            f"daemon memory grew {growth:.2f}x over {SOAK_ITERS} warm "
            f"submits (bound {MAX_GROWTH_RATIO}x)"
        )
    finally:
        embedded.stop()


#: Back-to-back engine sims for the vector-backend soak; the nightly
#: workflow can raise it like the daemon soak above.
SIM_ITERS = int(os.environ.get("REPRO_SOAK_SIM_ITERS", "500"))


@pytest.mark.stability
def test_soak_vector_sims_bound_kernel_memo_and_buffers(memory_tracker):
    """Repeated vector sims: kernel memo and region buffers stay flat.

    The codegen source memo is process-wide; if per-sim state leaked
    into it (or if region store buffers / rollback traces survived
    their engine), 500 back-to-back simulations would show monotonic
    growth.  Gates: memo footprint identical to its post-warm-up size,
    byte-identical results first to last, tracemalloc growth bounded.
    """
    from repro.experiments.runner import bundle_for, config_for
    from repro.ir import codegen
    from repro.tlssim.engine import TLSEngine

    bundle = bundle_for("go")
    program = bundle.program("U")
    config = config_for("U").with_mode(backend="vector")

    # Warm-up pays the one-time lowering + kernel compiles.
    warm_engine = TLSEngine(program, config=config, parallel=True)
    reference = warm_engine.run().to_state()
    assert warm_engine.backend == "vector"
    assert warm_engine.fused_regions > 0
    warm_memo = codegen.compile_stats()["memo_size"]
    memory_tracker.snapshot(time.monotonic())

    last = None
    for i in range(SIM_ITERS):
        engine = TLSEngine(program, config=config, parallel=True)
        last = engine.run().to_state()
        if i % 100 == 99:
            assert last == reference
            memory_tracker.snapshot(time.monotonic())

    memory_tracker.snapshot(time.monotonic())
    assert last == reference
    stats = codegen.compile_stats()
    assert stats["memo_size"] == warm_memo, (
        f"kernel memo grew from {warm_memo} to {stats['memo_size']} "
        f"entries over {SIM_ITERS} sims"
    )
    growth = memory_tracker.get_growth_ratio()
    assert growth < MAX_GROWTH_RATIO, (
        f"engine memory grew {growth:.2f}x over {SIM_ITERS} vector sims "
        f"(bound {MAX_GROWTH_RATIO}x)"
    )
