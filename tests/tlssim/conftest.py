"""Shared builders for TLS-engine tests."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.module import ChannelInfo, ParallelLoop
from repro.ir.verifier import verify_module


def make_counted_loop(
    iters=40,
    body=None,
    scalars=("i",),
    mem_channels=(),
    globals_spec=(),
    filler=0,
):
    """A hand-transformed parallel loop.

    ``body(fb)`` emits the epoch body right after the scalar waits (so
    its memory accesses sit early in the epoch), followed by ``filler``
    straight-line ALU instructions; the induction variable ``i`` is
    communicated with an early signal (the scheduled form).
    """
    mb = ModuleBuilder("t")
    for name, size, init in globals_spec:
        mb.global_var(name, size, init)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    for reg in scalars:
        fb.wait(f"scalar:{reg}", dest=reg)
    fb.add("i", 1, dest="i.fwd")
    fb.signal("scalar:i", "i.fwd")
    if body is not None:
        body(fb)
    if filler:
        acc = fb.const(1)
        for k in range(filler):
            acc = fb.binop(("add", "xor", "mul", "sub")[k % 4], acc, k % 13 + 1)
    fb.move("i.fwd", dest="i")
    cond = fb.binop("lt", "i", iters)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    fb.ret("i")
    module = mb.build()
    loop = ParallelLoop(
        function="main",
        header="loop",
        scalar_channels=[f"scalar:{r}" for r in scalars],
        mem_channels=list(mem_channels),
    )
    module.parallel_loops.append(loop)
    for reg in scalars:
        module.add_channel(
            ChannelInfo(name=f"scalar:{reg}", kind="scalar", scalar=reg)
        )
    for channel in mem_channels:
        module.add_channel(ChannelInfo(name=channel, kind="mem"))
    verify_module(module)
    return module


@pytest.fixture
def counted_loop_factory():
    return make_counted_loop
