"""The accounting identity: every graduation slot has a named cause.

``RegionStats.attribution`` must sum *exactly* (float-equal, no
epsilon — all simulated times are dyadic rationals) to
``slots.total`` on every workload under every scheme, and the named
categories must be consistent with the coarse busy/fail/sync
breakdown.  Fast/slow attribution equality is already pinned by
``test_event_stream.py`` via ``SimResult.to_state()``.
"""

import warnings

import pytest

from repro.experiments.runner import bundle_for
from repro.tlssim.stats import (
    AccountingWarning,
    SimResult,
    SlotBreakdown,
    normalized_attribution,
    strict_accounting,
)
from repro.workloads import all_workloads

WORKLOADS = tuple(w.name for w in all_workloads())
#: one bar per engine subsystem family (plain, compiler sync, hw sync,
#: hybrid, conservative l-mode) — the squash/sync/idle emission sites
BARS = ("U", "C", "H", "B", "L")


@pytest.mark.parametrize("name", WORKLOADS)
def test_identity_every_workload(name):
    bundle = bundle_for(name)
    for bar in BARS:
        result = bundle.simulate(bar)
        for region in result.regions:
            attr = region.attribution
            assert sum(attr.values()) == region.slots.total, (
                f"{name}/{bar}: attribution does not sum to total"
            )
            assert all(v >= 0.0 for v in attr.values()), (
                f"{name}/{bar}: negative category: "
                f"{ {k: v for k, v in attr.items() if v < 0} }"
            )
            fail = sum(v for k, v in attr.items() if k.startswith("fail."))
            assert fail == region.slots.fail, (
                f"{name}/{bar}: fail.* != slots.fail"
            )
            sync = sum(v for k, v in attr.items() if k.startswith("sync."))
            assert sync == region.slots.sync, (
                f"{name}/{bar}: sync.* != slots.sync"
            )
            assert attr.get("busy", 0.0) == region.slots.busy


def test_sequential_region_is_all_seq():
    result = bundle_for("go").simulate("SEQ")
    assert result.regions
    for region in result.regions:
        assert set(region.attribution) == {"seq"}
        assert region.attribution["seq"] == region.slots.total


def test_attribution_survives_state_round_trip():
    result = bundle_for("go").simulate("C")
    restored = SimResult.from_state(result.to_state())
    assert [r.attribution for r in restored.regions] == [
        r.attribution for r in result.regions
    ]


def test_merged_attribution_sums_regions():
    result = bundle_for("go").simulate("C")
    merged = result.merged_attribution()
    assert sum(merged.values()) == sum(
        r.slots.total for r in result.regions
    )


def test_normalized_attribution_matches_bar_height():
    from repro.tlssim.stats import normalized_region_time

    bundle = bundle_for("go")
    parallel = bundle.simulate("C")
    sequential = bundle.simulate("SEQ")
    height, _segments = normalized_region_time(parallel, sequential)
    normalized = normalized_attribution(parallel, sequential)
    assert sum(normalized.values()) == pytest.approx(height)


def test_counters_carry_attribution_gauges():
    result = bundle_for("go").simulate("C")
    slot_gauges = {
        k: v for k, v in result.counters.items() if k.startswith("slots{")
    }
    assert slot_gauges, "engine_counters lost the attribution gauges"
    assert sum(slot_gauges.values()) == sum(
        r.slots.total for r in result.regions
    )
    assert result.counters["slots_unattributed"] == 0.0
    assert result.counters["slots_imbalance"] == 0.0


class TestStrictAccounting:
    def test_negative_remainder_clamped_silently_by_default(self):
        slots = SlotBreakdown(busy=60.0, fail=30.0, sync=30.0, total=100.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert slots.other == 0.0
        assert slots.unattributed == -20.0
        assert slots.imbalance == 20.0

    def test_strict_mode_warns_on_imbalance(self):
        previous = strict_accounting(True)
        try:
            slots = SlotBreakdown(
                busy=60.0, fail=30.0, sync=30.0, total=100.0
            )
            with pytest.warns(AccountingWarning):
                assert slots.other == 0.0
        finally:
            strict_accounting(previous)

    def test_strict_mode_silent_when_balanced(self):
        previous = strict_accounting(True)
        try:
            slots = SlotBreakdown(
                busy=40.0, fail=30.0, sync=20.0, total=100.0
            )
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert slots.other == 10.0
            assert slots.imbalance == 0.0
        finally:
            strict_accounting(previous)

    def test_strict_accounting_returns_previous_setting(self):
        assert strict_accounting(True) is False
        assert strict_accounting(False) is True
        assert strict_accounting(False) is False
