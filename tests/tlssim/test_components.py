"""Simulator components: caches, channels, SAB, hw table, predictor."""

import pytest

from repro.tlssim.cache import CacheHierarchy, LRUCache
from repro.tlssim.config import TABLE1, SimConfig, config_for_bar
from repro.tlssim.forwarding import ChannelBank, SignalAddressBuffer
from repro.tlssim.hwsync import ViolatingLoadTable
from repro.tlssim.prediction import LastValuePredictor
from repro.tlssim.stats import SimResult, SlotBreakdown, normalized_region_time, RegionStats


class TestLRUCache:
    def test_hit_after_fill(self):
        cache = LRUCache(4)
        assert not cache.access(1)
        assert cache.access(1)

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 becomes most recent
        cache.access(3)  # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_counters(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_invalidate(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.invalidate(1)
        assert not cache.contains(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestCacheHierarchy:
    def test_latency_ladder(self):
        config = SimConfig()
        caches = CacheHierarchy(config)
        first = caches.access(0, 7)
        second = caches.access(0, 7)
        assert first == config.lat_mem  # cold miss
        assert second == config.lat_l1  # now resident

    def test_l2_shared_between_cores(self):
        config = SimConfig()
        caches = CacheHierarchy(config)
        caches.access(0, 7)  # fills L2 (and core 0 L1)
        assert caches.access(1, 7) == config.lat_l2

    def test_line_mapping(self):
        caches = CacheHierarchy(SimConfig())
        assert caches.line_of(0) == 0
        assert caches.line_of(8) == 1


class TestChannelBank:
    def test_fifo_per_kind(self):
        bank = ChannelBank(forward_latency=10.0)
        bank.send("ch", 1, "value", 11, time=5.0, producer_epoch=0, generation=0)
        bank.send("ch", 1, "addr", 99, time=6.0, producer_epoch=0, generation=0)
        bank.send("ch", 1, "value", 22, time=7.0, producer_epoch=0, generation=0)
        assert bank.peek("ch", 1, "value", 0).payload == 11
        assert bank.peek("ch", 1, "value", 1).payload == 22
        assert bank.peek("ch", 1, "addr", 0).payload == 99
        assert bank.peek("ch", 1, "value", 2) is None

    def test_arrival_time_adds_latency(self):
        bank = ChannelBank(forward_latency=10.0)
        message = bank.send("ch", 1, "value", 1, 5.0, 0, 0)
        assert bank.arrival_time(message) == 15.0

    def test_seed_arrives_immediately(self):
        bank = ChannelBank(forward_latency=10.0)
        bank.seed("ch", 0, "value", 42)
        message = bank.peek("ch", 0, "value", 0)
        assert bank.arrival_time(message) == float("-inf")

    def test_replace_last(self):
        bank = ChannelBank(forward_latency=1.0)
        bank.send("ch", 1, "addr", 5, 1.0, 0, 0)
        bank.send("ch", 1, "value", 10, 1.0, 0, 0)
        replaced = bank.replace_last("ch", 1, "value", 20, 2.0)
        assert replaced.payload == 10
        assert bank.peek("ch", 1, "value", 0).payload == 20
        assert bank.peek("ch", 1, "addr", 0).payload == 5

    def test_replace_missing_returns_none(self):
        bank = ChannelBank(forward_latency=1.0)
        assert bank.replace_last("ch", 1, "value", 20, 2.0) is None

    def test_withdraw_generation(self):
        bank = ChannelBank(forward_latency=1.0)
        bank.send("ch", 1, "value", 1, 1.0, 0, 0)
        bank.send("ch", 1, "value", 2, 2.0, 0, 1)
        bank.withdraw_generation(0, 0)
        assert bank.peek("ch", 1, "value", 0).payload == 2
        assert bank.peek("ch", 1, "value", 1) is None


class TestSignalAddressBuffer:
    def test_record_and_lookup(self):
        sab = SignalAddressBuffer(4)
        sab.record(100, "ch0")
        assert sab.channel_for(100) == "ch0"
        assert sab.channel_for(101) is None

    def test_null_not_recorded(self):
        sab = SignalAddressBuffer(4)
        sab.record(0, "ch0")
        assert len(sab) == 0

    def test_high_water(self):
        sab = SignalAddressBuffer(4)
        for addr in (1, 2, 3):
            sab.record(addr, "ch")
        assert sab.high_water == 3

    def test_overflow_flagged(self):
        sab = SignalAddressBuffer(2)
        for addr in (1, 2, 3):
            sab.record(addr, "ch")
        assert sab.overflowed

    def test_clear(self):
        sab = SignalAddressBuffer(2)
        sab.record(1, "ch")
        sab.clear()
        assert sab.channel_for(1) is None


class TestViolatingLoadTable:
    def test_threshold(self):
        table = ViolatingLoadTable(threshold=2)
        table.record_violation(5)
        assert not table.should_synchronize(5)
        table.record_violation(5)
        assert table.should_synchronize(5)

    def test_is_tracked_before_threshold(self):
        table = ViolatingLoadTable(threshold=2)
        table.record_violation(5)
        assert table.is_tracked(5)
        assert not table.is_tracked(6)

    def test_lru_eviction(self):
        table = ViolatingLoadTable(size=2, threshold=1)
        table.record_violation(1)
        table.record_violation(2)
        table.record_violation(1)  # refresh 1
        table.record_violation(3)  # evicts 2
        assert table.is_tracked(1)
        assert not table.is_tracked(2)
        assert table.is_tracked(3)

    def test_periodic_reset(self):
        table = ViolatingLoadTable(threshold=1, reset_interval=3)
        table.record_violation(7)
        for _ in range(3):
            table.on_commit()
        assert not table.is_tracked(7)
        assert table.resets == 1

    def test_none_ignored(self):
        table = ViolatingLoadTable()
        table.record_violation(None)
        assert len(table) == 0
        assert not table.should_synchronize(None)


class TestLastValuePredictor:
    def test_needs_confidence(self):
        predictor = LastValuePredictor(confidence_threshold=2)
        predictor.train(1, 42)
        assert predictor.predict(1) is None
        predictor.train(1, 42)
        predictor.train(1, 42)
        assert predictor.predict(1) == 42

    def test_changing_values_reset_confidence(self):
        predictor = LastValuePredictor(confidence_threshold=1)
        predictor.train(1, 10)
        predictor.train(1, 10)
        assert predictor.predict(1) == 10
        predictor.train(1, 11)  # value changed
        assert predictor.predict(1) is None

    def test_outcome_counters(self):
        predictor = LastValuePredictor()
        predictor.record_outcome(True)
        predictor.record_outcome(False)
        assert predictor.predictions_used == 2
        assert predictor.mispredictions == 1

    def test_lru_bound(self):
        predictor = LastValuePredictor(size=2)
        for iid in (1, 2, 3):
            predictor.train(iid, 0)
        assert len(predictor) == 2


class TestConfig:
    def test_with_mode_returns_copy(self):
        base = SimConfig()
        variant = base.with_mode(hw_sync=True)
        assert variant.hw_sync and not base.hw_sync

    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(num_cores=0)
        with pytest.raises(ValueError):
            SimConfig(oracle_mode="bogus")

    def test_config_for_bar(self):
        assert config_for_bar("O").oracle_mode == "all"
        assert config_for_bar("E").oracle_mode == "sync"
        assert config_for_bar("H").hw_sync
        assert config_for_bar("P").prediction
        assert config_for_bar("L").l_mode_stall
        assert config_for_bar("U") == SimConfig()
        with pytest.raises(ValueError):
            config_for_bar("Z")

    def test_hashable_for_memoization(self):
        assert hash(SimConfig()) == hash(SimConfig())

    def test_table1_consistent_with_config(self):
        from repro.experiments.table1_config import verify

        assert verify() == []

    def test_table1_has_memory_rows(self):
        assert "Cache Line Size" in TABLE1


class TestStats:
    def test_other_is_remainder(self):
        slots = SlotBreakdown(busy=10, fail=5, sync=5, total=30)
        assert slots.other == 10

    def test_other_never_negative(self):
        slots = SlotBreakdown(busy=40, fail=0, sync=0, total=30)
        assert slots.other == 0

    def test_normalized_segments_sum_to_scale(self):
        slots = SlotBreakdown(busy=10, fail=20, sync=5, total=50)
        segments = slots.normalized(80.0)
        assert abs(sum(segments.values()) - 80.0) < 1e-9

    def test_normalized_region_time(self):
        parallel = SimResult(return_value=0, program_cycles=100)
        parallel.regions.append(
            RegionStats(function="f", header="h", start_time=0, end_time=50)
        )
        parallel.regions[0].slots.total = 800
        parallel.regions[0].slots.busy = 400
        sequential = SimResult(return_value=0, program_cycles=200)
        sequential.regions.append(
            RegionStats(function="f", header="h", start_time=0, end_time=100)
        )
        time, segments = normalized_region_time(parallel, sequential)
        assert time == 50.0
        assert segments["busy"] == 25.0


class TestSimResultExport:
    def test_to_dict_round_trips_through_json(self):
        import json

        from repro.tlssim.sequential import simulate_tls
        from tests.tlssim.conftest import make_counted_loop

        result = simulate_tls(make_counted_loop(iters=6, filler=10))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["return_value"] == result.return_value
        region = payload["regions"][0]
        assert region["epochs_committed"] == 6
        assert region["slots"]["total"] > 0
