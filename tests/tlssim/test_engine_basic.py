"""TLS engine: sequential semantics, epoch execution, violations, commits."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import run_module
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import EngineError, TLSEngine
from repro.tlssim.sequential import simulate_sequential, simulate_tls

from tests.tlssim.conftest import make_counted_loop


def seq_equivalent(module):
    """Engine (both modes) must agree with the reference interpreter."""
    reference = run_module(module)
    tls = simulate_tls(module)
    seq = simulate_sequential(module)
    assert tls.return_value == reference.return_value
    assert seq.return_value == reference.return_value
    assert tls.memory_checksum == reference.memory.checksum()
    assert seq.memory_checksum == reference.memory.checksum()
    return tls, seq


class TestSequentialExecution:
    def test_plain_program(self):
        mb = ModuleBuilder()
        mb.global_var("g", 4)
        fb = mb.function("main")
        fb.block("entry")
        fb.store("@g", 10, offset=2)
        v = fb.load("@g", offset=2)
        r = fb.mul(v, 3)
        fb.ret(r)
        tls, seq = seq_equivalent(mb.build())
        assert tls.return_value == 30
        assert tls.program_cycles > 0

    def test_calls_charge_time(self):
        mb = ModuleBuilder()
        fb = mb.function("leaf", ["x"])
        fb.block("entry")
        r = fb.add("x", 1)
        fb.ret(r)
        fb = mb.function("main")
        fb.block("entry")
        r = fb.call("leaf", [41])
        fb.ret(r)
        tls, _seq = seq_equivalent(mb.build())
        assert tls.return_value == 42

    def test_sequential_baseline_tracks_regions(self):
        module = make_counted_loop(iters=20)
        seq = simulate_sequential(module)
        assert len(seq.regions) == 1
        assert seq.regions[0].cycles > 0
        assert seq.sequential_cycles >= 0


class TestEpochExecution:
    def test_counted_loop_result(self):
        module = make_counted_loop(iters=30)
        tls, _ = seq_equivalent(module)
        region = tls.regions[0]
        assert region.epochs_committed == 30

    def test_independent_epochs_speed_up(self):
        def body(fb):
            offset = fb.mul("i", 8)
            addr = fb.add("@out", offset)
            fb.store(addr, "i")

        module = make_counted_loop(
            iters=60,
            body=body,
            globals_spec=[("out", 60 * 8, None)],
            filler=80,
        )
        tls, seq = seq_equivalent(module)
        speedup = seq.region_cycles() / tls.region_cycles()
        assert speedup > 2.0, f"expected parallel speedup, got {speedup:.2f}"

    def test_raw_dependence_causes_violations(self):
        def body(fb):
            v = fb.load("@shared")
            v2 = fb.add(v, 1)
            fb.store("@shared", v2)

        module = make_counted_loop(
            iters=40, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )
        tls, _ = seq_equivalent(module)
        region = tls.regions[0]
        assert len(region.violations) > 10
        assert region.slots.fail > 0
        # Restarted epochs all eventually commit with correct data.
        assert region.epochs_committed == 40

    def test_distant_dependences_rarely_violate(self):
        """A distance-3 dependence (producer long committed) is safe."""

        def body(fb):
            phase = fb.mod("i", 4)
            w = fb.mul(phase, 8)
            waddr = fb.add("@slots4", w)
            fb.store(waddr, "i")
            rbase = fb.add("i", 1)
            rphase = fb.mod(rbase, 4)
            r = fb.mul(rphase, 8)
            raddr = fb.add("@slots4", r)
            fb.load(raddr)

        module = make_counted_loop(
            iters=40, body=body, globals_spec=[("slots4", 32, None)], filler=60
        )
        tls, _ = seq_equivalent(module)
        # distance-3 deps: producers committed before the exposed read
        assert len(tls.regions[0].violations) <= 4

    def test_exit_registers_flow_to_sequential_code(self):
        module = make_counted_loop(iters=13)
        tls = simulate_tls(module)
        assert tls.return_value == 13  # final i observed after the loop

    def test_multiple_region_instances(self):
        mb = ModuleBuilder()
        mb.global_var("acc", 1)
        fb = mb.function("inner", ["n"])
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.wait("scalar:inner", dest="i")
        fb.add("i", 1, dest="i.f")
        fb.signal("scalar:inner", "i.f")
        v = fb.load("@acc")
        v2 = fb.add(v, "i")
        fb.store("@acc", v2)
        fb.move("i.f", dest="i")
        c = fb.binop("lt", "i", "n")
        fb.condbr(c, "loop", "out")
        fb.block("out")
        fb.ret("i")
        fb = mb.function("main")
        fb.block("entry")
        fb.call("inner", [5])
        fb.call("inner", [7])
        r = fb.load("@acc")
        fb.ret(r)
        module = mb.build()
        from repro.ir.module import ChannelInfo, ParallelLoop

        module.parallel_loops.append(
            ParallelLoop(
                function="inner", header="loop",
                scalar_channels=["scalar:inner"],
            )
        )
        module.add_channel(
            ChannelInfo(name="scalar:inner", kind="scalar", scalar="i")
        )
        tls, _ = seq_equivalent(module)
        assert len(tls.regions) == 2
        assert tls.return_value == sum(range(5)) + sum(range(7))


class TestCommitsAndSlots:
    def test_commit_order_and_counts(self):
        module = make_counted_loop(iters=25, filler=30)
        tls = simulate_tls(module)
        region = tls.regions[0]
        assert region.epochs_committed == 25
        assert region.end_time > region.start_time

    def test_slot_accounting_is_consistent(self):
        module = make_counted_loop(iters=25, filler=30)
        tls = simulate_tls(module)
        slots = tls.regions[0].slots
        assert slots.total > 0
        assert slots.busy > 0
        assert slots.busy + slots.fail + slots.sync <= slots.total + 1e-6
        assert slots.other >= 0

    def test_total_slots_match_geometry(self):
        config = SimConfig()
        module = make_counted_loop(iters=25, filler=30)
        tls = simulate_tls(module, config=config)
        region = tls.regions[0]
        expected = region.cycles * config.issue_width * config.num_cores
        assert abs(region.slots.total - expected) < 1e-6


class TestEngineErrors:
    def test_alloc_in_epoch_rejected(self):
        def body(fb):
            fb.alloc(4)

        module = make_counted_loop(iters=4, body=body)
        with pytest.raises(EngineError, match="alloc"):
            simulate_tls(module)

    def test_oracle_mode_requires_oracle(self):
        module = make_counted_loop(iters=4)
        with pytest.raises(EngineError, match="oracle"):
            TLSEngine(module, config=SimConfig(oracle_mode="all"))

    def test_null_dereference_in_oldest_epoch_is_fatal(self):
        def body(fb):
            z = fb.const(0)
            fb.load(z)

        module = make_counted_loop(iters=4, body=body)
        with pytest.raises(EngineError, match="NULL"):
            simulate_tls(module)
