"""Engine edge cases: parked runs, tiny regions, odd machine shapes."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import run_module
from repro.ir.module import ChannelInfo, ParallelLoop
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine
from repro.tlssim.sequential import simulate_tls

from tests.tlssim.conftest import make_counted_loop


class TestSpeculativeFaults:
    def test_speculative_division_fault_heals(self):
        """A div-by-zero caused by a stale speculative value parks the
        run; the restart with fresh data succeeds."""

        def body(fb):
            # divisor starts at 1 and is rotated 1 -> 2 -> 1 by epochs;
            # a stale read can see 0 mid-update only speculatively
            d = fb.load("@divisor")
            q = fb.div(100, d)
            nd = fb.sub(3, d)   # 1 <-> 2
            fb.store("@divisor", nd)
            fb.store("@divisor", nd)  # rewrite (keeps value valid)
            fb.add(q, 0)

        module = make_counted_loop(
            iters=20, body=body, globals_spec=[("divisor", 1, 1)], filler=30
        )
        reference = run_module(module)
        result = simulate_tls(module)
        assert result.return_value == reference.return_value

    def test_null_in_speculative_tail_is_survivable(self):
        """Control-speculated tail epochs may read garbage; a NULL
        dereference there parks the run and the region still finishes."""

        def body(fb):
            # pointer table: entry i valid for i < 20, then 0 (NULL)
            addr = fb.add("@ptrs", "i")
            p = fb.load(addr)
            ok = fb.binop("ne", p, 0)
            fb.condbr(ok, "deref", "skip")
            fb.block("deref")
            fb.load(p)
            fb.jump("skip")
            fb.block("skip")

        # ptrs[i] points at scratch for the 20 real epochs; beyond the
        # exit the loop is never (non-speculatively) reached.
        module = make_counted_loop(
            iters=20,
            body=body,
            globals_spec=[("ptrs", 32, None), ("scratch", 8, None)],
            filler=20,
        )
        result = simulate_tls(module)
        assert result.regions[0].epochs_committed == 20

    def test_runaway_speculative_loop_is_parked_and_squashed(self):
        """A speculative run that never terminates (stale bound) hits
        the per-run step limit, parks, and gets restarted when oldest."""

        def body(fb):
            bound = fb.load("@bound")
            fb.const(0, dest="j")
            fb.jump("inner")
            fb.block("inner")
            fb.add("j", 1, dest="j")
            c = fb.binop("lt", "j", bound)
            fb.condbr(c, "inner", "out")
            fb.block("out")
            nb = fb.add(bound, 0)
            fb.store("@bound", nb)

        module = make_counted_loop(
            iters=8, body=body, globals_spec=[("bound", 1, 3)], filler=10
        )
        config = SimConfig().with_mode(max_epoch_steps=2000)
        result = TLSEngine(module, config=config).run()
        assert result.regions[0].epochs_committed == 8


class TestTinyRegions:
    def test_single_epoch_region(self):
        module = make_counted_loop(iters=1, filler=10)
        result = simulate_tls(module)
        assert result.regions[0].epochs_committed == 1
        assert result.return_value == 1

    def test_two_epochs_on_four_cores(self):
        module = make_counted_loop(iters=2, filler=10)
        result = simulate_tls(module)
        assert result.regions[0].epochs_committed == 2
        assert result.return_value == 2

    def test_zero_iteration_loop(self):
        """The first epoch immediately takes the exit edge."""
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        fb.const(5, dest="i")
        fb.jump("loop")
        fb.block("loop")
        fb.wait("scalar:i", dest="i")
        fb.add("i", 1, dest="i.f")
        fb.signal("scalar:i", "i.f")
        fb.move("i.f", dest="i")
        c = fb.binop("lt", "i", 3)   # 6 < 3: false on epoch 0
        fb.condbr(c, "loop", "done")
        fb.block("done")
        fb.ret("i")
        module = mb.build()
        module.parallel_loops.append(
            ParallelLoop(
                function="main", header="loop", scalar_channels=["scalar:i"]
            )
        )
        module.add_channel(ChannelInfo(name="scalar:i", kind="scalar", scalar="i"))
        result = simulate_tls(module)
        assert result.return_value == 6
        assert result.regions[0].epochs_committed == 1


class TestMachineShapes:
    @pytest.mark.parametrize("cores", [1, 2, 3, 8])
    def test_core_counts(self, cores):
        module = make_counted_loop(iters=20, filler=30)
        reference = run_module(module)
        result = TLSEngine(module, config=SimConfig(num_cores=cores)).run()
        assert result.return_value == reference.return_value
        assert result.memory_checksum == reference.memory.checksum()

    @pytest.mark.parametrize("width", [1, 2, 8])
    def test_issue_widths(self, width):
        module = make_counted_loop(iters=12, filler=20)
        reference = run_module(module)
        result = TLSEngine(module, config=SimConfig(issue_width=width)).run()
        assert result.return_value == reference.return_value

    def test_word_granularity_removes_false_sharing(self):
        def body(fb):
            slot = fb.mod("i", 4)
            raddr = fb.add("@packed", slot)
            fb.load(raddr)
            wslot = fb.add(slot, 4)
            waddr = fb.add("@packed", wslot)
            fb.store(waddr, "i")

        module = make_counted_loop(
            iters=40, body=body, globals_spec=[("packed", 8, None)], filler=40
        )
        line_mode = simulate_tls(module)
        word_mode = TLSEngine(
            module, config=SimConfig(violation_granularity="word")
        ).run()
        assert word_mode.return_value == line_mode.return_value
        assert len(word_mode.regions[0].violations) == 0
        assert len(line_mode.regions[0].violations) > 5

    def test_word_granularity_keeps_true_dependences(self):
        def body(fb):
            v = fb.load("@shared")
            fb.store("@shared", fb.add(v, 1))

        module = make_counted_loop(
            iters=30, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )
        word_mode = TLSEngine(
            module, config=SimConfig(violation_granularity="word")
        ).run()
        assert len(word_mode.regions[0].violations) > 5
        assert word_mode.return_value == run_module(module).return_value


class TestMultiLatchLoops:
    def build(self, transformed=True):
        """A loop with a 'continue'-style second backedge."""
        mb = ModuleBuilder()
        mb.global_var("acc", 1)
        fb = mb.function("main")
        fb.block("entry")
        fb.const(0, dest="i")
        fb.jump("loop")
        fb.block("loop")
        if transformed:
            fb.wait("scalar:i", dest="i")
            fb.add("i", 1, dest="i.f")
            fb.signal("scalar:i", "i.f")
            fb.move("i.f", dest="i")
        else:
            fb.add("i", 1, dest="i")
        parity = fb.mod("i", 3)
        skip = fb.binop("eq", parity, 0)
        fb.condbr(skip, "cont", "work")
        fb.block("cont")  # second latch: early continue
        c1 = fb.binop("lt", "i", 30)
        fb.condbr(c1, "loop", "done")
        fb.block("work")
        v = fb.load("@acc")
        fb.store("@acc", fb.add(v, "i"))
        c2 = fb.binop("lt", "i", 30)
        fb.condbr(c2, "loop", "done")
        fb.block("done")
        r = fb.load("@acc")
        fb.ret(r)
        module = mb.build()
        module.parallel_loops.append(
            ParallelLoop(
                function="main",
                header="loop",
                scalar_channels=["scalar:i"] if transformed else [],
            )
        )
        if transformed:
            module.add_channel(
                ChannelInfo(name="scalar:i", kind="scalar", scalar="i")
            )
        return module

    def test_both_backedges_bound_epochs(self):
        module = self.build()
        reference = run_module(self.build())
        result = simulate_tls(module)
        assert result.return_value == reference.return_value
        assert result.regions[0].epochs_committed == 30

    def test_scalar_sync_pass_handles_multiple_latches(self):
        from repro.compiler.scalar_sync import insert_all_scalar_sync
        from repro.compiler.scheduling import schedule_all

        module = self.build(transformed=False)
        reference = run_module(self.build(transformed=False)).return_value
        insert_all_scalar_sync(module)
        schedule_all(module)
        assert run_module(module).return_value == reference
        assert simulate_tls(module).return_value == reference
