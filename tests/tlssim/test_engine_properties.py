"""Property-based equivalence: TLS engine vs reference interpreter.

For randomly generated parallelized loops (random arithmetic over
shared and private globals, with the scalar-sync pass applied), the
TLS engine — restarts, forwarding, squashes and all — must produce
exactly the sequential result and final memory.  This is the paper's
core correctness obligation: speculation may only affect *time*.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.scalar_sync import insert_all_scalar_sync
from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import run_module
from repro.ir.module import ParallelLoop
from repro.ir.verifier import verify_module
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine
from repro.tlssim.sequential import simulate_tls

SAFE_OPS = ("add", "sub", "mul", "xor", "and", "or", "min", "max")


@st.composite
def random_parallel_loop(draw):
    """A loop mixing private work, shared RMWs, and conditionals."""
    iters = draw(st.integers(min_value=3, max_value=25))
    shared_count = draw(st.integers(min_value=1, max_value=3))
    mb = ModuleBuilder("rand")
    for index in range(shared_count):
        mb.global_var(f"s{index}", 1, init=draw(st.integers(0, 50)))
    mb.global_var("private", iters * 8)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.const(draw(st.integers(0, 9)), dest="acc")
    fb.jump("loop")
    fb.block("loop")
    regs = ["i", "acc"]
    steps = draw(st.integers(min_value=2, max_value=10))
    for step in range(steps):
        action = draw(st.integers(0, 3))
        if action == 0:  # arithmetic
            op = draw(st.sampled_from(SAFE_OPS))
            lhs = draw(st.sampled_from(regs))
            rhs = draw(st.integers(-9, 9))
            regs.append(fb.binop(op, lhs, rhs).name)
        elif action == 1:  # shared RMW
            which = draw(st.integers(0, shared_count - 1))
            value = fb.load(f"@s{which}")
            mixed = fb.binop(
                draw(st.sampled_from(SAFE_OPS)), value, draw(st.sampled_from(regs))
            )
            fb.store(f"@s{which}", mixed)
            regs.append(mixed.name)
        elif action == 2:  # private store
            offset = fb.mul("i", 8)
            addr = fb.add("@private", offset)
            fb.store(addr, draw(st.sampled_from(regs)))
        else:  # data-dependent diamond
            label = f"d{step}"
            cond = fb.binop("and", draw(st.sampled_from(regs)), 1)
            fb.condbr(cond, f"{label}t", f"{label}f")
            fb.block(f"{label}t")
            fb.add("acc", 1, dest="acc")
            fb.jump(f"{label}j")
            fb.block(f"{label}f")
            fb.jump(f"{label}j")
            fb.block(f"{label}j")
    fb.add("acc", draw(st.sampled_from(regs)), dest="acc")
    fb.add("i", 1, dest="i")
    cond = fb.binop("lt", "i", iters)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    result = fb.load("@s0")
    total = fb.add(result, "acc")
    fb.ret(total)
    module = mb.build()
    module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
    insert_all_scalar_sync(module)
    verify_module(module)
    return module


class TestEngineMatchesInterpreter:
    @given(random_parallel_loop())
    @settings(max_examples=40, deadline=None)
    def test_plain_tls(self, module):
        reference = run_module(module)
        tls = simulate_tls(module)
        assert tls.return_value == reference.return_value
        assert tls.memory_checksum == reference.memory.checksum()

    @given(random_parallel_loop())
    @settings(max_examples=20, deadline=None)
    def test_hw_sync_mode(self, module):
        reference = run_module(module)
        result = TLSEngine(
            module, config=SimConfig().with_mode(hw_sync=True)
        ).run()
        assert result.return_value == reference.return_value
        assert result.memory_checksum == reference.memory.checksum()

    @given(random_parallel_loop())
    @settings(max_examples=20, deadline=None)
    def test_prediction_mode(self, module):
        reference = run_module(module)
        result = TLSEngine(
            module, config=SimConfig().with_mode(prediction=True)
        ).run()
        assert result.return_value == reference.return_value
        assert result.memory_checksum == reference.memory.checksum()

    @given(random_parallel_loop())
    @settings(max_examples=20, deadline=None)
    def test_region_accounting_invariants(self, module):
        result = simulate_tls(module)
        for region in result.regions:
            slots = region.slots
            assert slots.total >= 0
            assert slots.busy + slots.sync + slots.fail <= slots.total + 1e-6
            assert region.epochs_committed >= 1
            assert region.end_time >= region.start_time
