"""The Section 2.2 forwarding protocol and the idealized/hw schemes."""

from repro.ir.builder import ModuleBuilder
from repro.ir.interpreter import run_module
from repro.ir.module import ChannelInfo, ParallelLoop
from repro.ir.verifier import verify_module
from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine
from repro.tlssim.oracle import collect_oracle
from repro.tlssim.sequential import simulate_tls


def make_protocol_loop(iters=40, sab_conflict=False, alternating=False, filler=30):
    """A loop whose shared-counter RMW uses the full wait/check/select
    protocol with an early signal, as the compiler would emit it.

    ``sab_conflict``: the producer stores the counter *again* after
    signalling, exercising the signal address buffer correction path.
    ``alternating``: only even epochs store, so the forwarded address
    pipelines through non-producing epochs via the auto-flush.
    """
    mb = ModuleBuilder("proto")
    mb.global_var("counter", 1, init=3)
    mb.global_var("slots", iters * 8)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    fb.wait("scalar:i", dest="i")
    fb.add("i", 1, dest="i.fwd")
    fb.signal("scalar:i", "i.fwd")
    # consumer side of the protocol
    f_addr = fb.wait("mem:c", kind="addr")
    fb.check(f_addr, "@counter")
    f_val = fb.wait("mem:c", kind="value")
    m_val = fb.load("@counter")
    cur = fb.select(f_val, m_val)
    fb.resume()
    if alternating:
        parity = fb.mod("i", 2)
        fb.condbr(parity, "skip_store", "do_store")
        fb.block("do_store")
    new = fb.add(cur, "i")
    fb.store("@counter", new)
    fb.signal("mem:c", "@counter", kind="addr")
    fb.signal("mem:c", new, kind="value")
    if sab_conflict:
        fixed = fb.add(new, 1)
        fb.store("@counter", fixed)  # conflicts with the signalled addr
    if alternating:
        fb.jump("rest")
        fb.block("skip_store")
        fb.jump("rest")
        fb.block("rest")
    acc = fb.const(1)
    for k in range(filler):
        acc = fb.binop(("add", "xor", "mul", "sub")[k % 4], acc, k % 11 + 1)
    off = fb.mul("i", 8)
    slot = fb.add("@slots", off)
    dep = fb.binop("xor", acc, cur)
    fb.store(slot, dep)
    fb.move("i.fwd", dest="i")
    cond = fb.binop("lt", "i", iters)
    fb.condbr(cond, "loop", "done")
    fb.block("done")
    final = fb.load("@counter")
    fb.ret(final)
    module = mb.build()
    module.parallel_loops.append(
        ParallelLoop(
            function="main",
            header="loop",
            scalar_channels=["scalar:i"],
            mem_channels=["mem:c"],
        )
    )
    module.add_channel(ChannelInfo(name="scalar:i", kind="scalar", scalar="i"))
    module.add_channel(ChannelInfo(name="mem:c", kind="mem"))
    # mark the guarded load for E-mode / Figure 11 classification
    from repro.ir.instructions import Load

    for instr in module.function("main").instructions():
        if isinstance(instr, Load) and instr.addr.__class__.__name__ == "GlobalRef":
            if instr.addr.name == "counter":
                module.sync_loads.add(instr.iid)
    verify_module(module)
    return module


class TestForwardingProtocol:
    def test_protocol_produces_correct_result(self):
        module = make_protocol_loop()
        reference = run_module(module)
        tls = simulate_tls(module)
        assert tls.return_value == reference.return_value
        assert tls.memory_checksum == reference.memory.checksum()

    def test_forwarding_removes_violations(self):
        module = make_protocol_loop()
        tls = simulate_tls(module)
        assert len(tls.regions[0].violations) <= 2

    def test_unsynchronized_version_violates(self):
        """Same dependence without the protocol fails constantly."""
        module = make_protocol_loop()
        config = SimConfig().with_mode(compiler_mem_sync=False)
        marking = TLSEngine(module, config=config).run()
        synced = simulate_tls(module)
        assert len(marking.regions[0].violations) > len(synced.regions[0].violations)
        assert marking.return_value == synced.return_value

    def test_signal_buffer_conflict_corrects_value(self):
        module = make_protocol_loop(sab_conflict=True)
        reference = run_module(module)
        tls = simulate_tls(module)
        assert tls.return_value == reference.return_value
        region = tls.regions[0]
        assert any(v.reason == "sab" for v in region.violations) or (
            region.epochs_committed == 40
        )

    def test_signal_buffer_high_water_small(self):
        """Paper: 'we never need a buffer larger than 10-entries'."""
        module = make_protocol_loop()
        tls = simulate_tls(module)
        assert tls.regions[0].max_signal_buffer <= 10

    def test_auto_flush_pipelines_values(self):
        """Non-producing epochs re-forward, so consumers never hang."""
        module = make_protocol_loop(alternating=True)
        reference = run_module(module)
        tls = simulate_tls(module)
        assert tls.return_value == reference.return_value
        assert tls.regions[0].epochs_committed == 40

    def test_sync_stall_accounted_as_memory_sync(self):
        module = make_protocol_loop(filler=4)  # tiny epochs stall on waits
        tls = simulate_tls(module)
        region = tls.regions[0]
        assert region.sync_memory + region.sync_scalar > 0


class TestIdealizedModes:
    def test_oracle_all_eliminates_violations(self):
        module = make_protocol_loop()
        config = SimConfig().with_mode(compiler_mem_sync=False, oracle_mode="all")
        oracle = collect_oracle(module)
        result = TLSEngine(module, config=config, oracle=oracle).run()
        assert result.return_value == run_module(module).return_value
        # Only control-speculated tail epochs (past the loop exit, where
        # the sequential trace has no values) may still violate.
        real = [v for v in result.regions[0].violations if v.epoch < 40]
        assert real == []

    def test_oracle_sync_mode_beats_plain_sync(self):
        module = make_protocol_loop(filler=6)
        oracle = collect_oracle(module)
        plain = simulate_tls(module)
        ideal = TLSEngine(
            module, config=SimConfig().with_mode(oracle_mode="sync"), oracle=oracle
        ).run()
        assert ideal.return_value == plain.return_value
        assert ideal.region_cycles() <= plain.region_cycles() + 1e-6

    def test_l_mode_slower_but_correct(self):
        module = make_protocol_loop()
        plain = simulate_tls(module)
        l_mode = TLSEngine(
            module, config=SimConfig().with_mode(l_mode_stall=True)
        ).run()
        assert l_mode.return_value == plain.return_value
        assert l_mode.region_cycles() >= plain.region_cycles() - 1e-6


class TestHardwareSchemes:
    def unsync_rmw_loop(self, iters=40):
        from tests.tlssim.conftest import make_counted_loop

        def body(fb):
            v = fb.load("@shared")
            v2 = fb.add(v, 1)
            fb.store("@shared", v2)

        return make_counted_loop(
            iters=iters, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )

    def test_hw_sync_reduces_violations(self):
        module = self.unsync_rmw_loop()
        plain = simulate_tls(module)
        hw = TLSEngine(module, config=SimConfig().with_mode(hw_sync=True)).run()
        assert hw.return_value == plain.return_value
        assert len(hw.regions[0].violations) < len(plain.regions[0].violations)
        assert hw.regions[0].sync_hw > 0

    def test_prediction_correct_even_when_wrong(self):
        module = self.unsync_rmw_loop()
        predicted = TLSEngine(
            module, config=SimConfig().with_mode(prediction=True)
        ).run()
        assert predicted.return_value == simulate_tls(module).return_value

    def test_prediction_helps_constant_values(self):
        """A load of a near-constant word becomes predictable."""
        from tests.tlssim.conftest import make_counted_loop

        def body(fb):
            v = fb.load("@mostly_const")
            fb.store("@mostly_const", v)  # silent store: same value

        module = make_counted_loop(
            iters=60, body=body, globals_spec=[("mostly_const", 1, 7)], filler=40
        )
        plain = simulate_tls(module)
        predicted = TLSEngine(
            module, config=SimConfig().with_mode(prediction=True)
        ).run()
        assert predicted.return_value == plain.return_value
        assert len(predicted.regions[0].violations) <= len(
            plain.regions[0].violations
        )


class TestFalseSharing:
    def test_line_granularity_violations(self):
        """Different words, same line: violations without true deps."""
        from tests.tlssim.conftest import make_counted_loop

        def body(fb):
            slot = fb.mod("i", 4)
            raddr = fb.add("@packed", slot)
            fb.load(raddr)
            wslot = fb.add(slot, 4)
            waddr = fb.add("@packed", wslot)
            fb.store(waddr, "i")

        module = make_counted_loop(
            iters=40, body=body, globals_spec=[("packed", 8, None)], filler=40
        )
        tls = simulate_tls(module)
        assert len(tls.regions[0].violations) > 5
        assert tls.return_value == run_module(module).return_value
