"""Fast/slow path event-stream equivalence (the obs acceptance gate).

The observability bus must not break the fast path's invisibility:
with a collector attached, the slow path (object-walking scheduler)
and the fast path (decoded dispatch + event heap) must emit identical
event streams for the same program and config.  These tests pin that
for every workload under every bar label — the epoch-lifecycle subset
byte-identical as the hard acceptance criterion, and in fact the full
stream (forwarding, cache, hwsync, prediction events included), which
currently holds and is asserted too so any future reordering is loud.

Same matrix rationale as ``test_fastpath.py``: each scheme family
exercises a different engine subsystem and therefore different
emission sites.
"""

import pytest

from repro.experiments.runner import BAR_PROGRAM, bundle_for, config_for
from repro.obs.bus import CollectorSink, EventBus
from repro.obs.events import EPOCH_KINDS
from repro.tlssim.engine import TLSEngine
from repro.workloads import all_workloads

BARS = ("U", "C", "T", "H", "P", "B", "E", "L", "O", "SEQ")
WORKLOADS = tuple(w.name for w in all_workloads())


def _stream(program, config, oracle, parallel):
    bus = EventBus()
    collector = bus.attach(CollectorSink())
    result = TLSEngine(
        program, config=config, oracle=oracle, parallel=parallel, obs=bus
    ).run()
    return [e.key() for e in collector.events], result


@pytest.mark.parametrize("backend", ("tuples", "vector"))
@pytest.mark.parametrize("name", WORKLOADS)
def test_event_streams_identical_on_every_bar(name, backend):
    bundle = bundle_for(name)
    for bar in BARS:
        program = bundle.program(bar)
        config = config_for(bar)
        oracle = None
        if config.oracle_mode != "off":
            oracle = bundle.oracle_for(BAR_PROGRAM[bar])
        parallel = bar != "SEQ"
        fast_stream, fast_result = _stream(
            program,
            config.with_mode(fast_path=True, backend=backend),
            oracle, parallel,
        )
        slow_stream, slow_result = _stream(
            program, config.with_mode(fast_path=False), oracle, parallel
        )
        fast_epoch = [k for k in fast_stream if k[0] in EPOCH_KINDS]
        slow_epoch = [k for k in slow_stream if k[0] in EPOCH_KINDS]
        assert fast_epoch == slow_epoch, (
            f"{name}/{bar}: epoch-level event streams diverged ({backend})"
        )
        assert fast_stream == slow_stream, (
            f"{name}/{bar}: full event streams diverged ({backend})"
        )
        # attaching the bus must not perturb the simulation itself
        assert fast_result.to_state() == slow_result.to_state(), (
            f"{name}/{bar}: results diverged with the bus attached ({backend})"
        )


def test_bus_does_not_change_results():
    """A collector-observed run equals an unobserved run bit for bit."""
    bundle = bundle_for("go")
    program = bundle.program("C")
    config = config_for("C")
    _, observed = _stream(program, config, None, True)
    plain = TLSEngine(program, config=config, parallel=True).run()
    assert observed.to_state() == plain.to_state()
