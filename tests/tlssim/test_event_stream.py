"""Fast/slow path event-stream equivalence (the obs acceptance gate).

The observability bus must not break the fast path's invisibility:
with a collector attached, the slow path (object-walking scheduler)
and the fast path (decoded dispatch + event heap) must emit identical
event streams for the same program and config.  These tests pin that
for every workload under every bar label — the epoch-lifecycle subset
byte-identical as the hard acceptance criterion, and in fact the full
stream (forwarding, cache, hwsync, prediction events included), which
currently holds and is asserted too so any future reordering is loud.

Same matrix rationale as ``test_fastpath.py``: each scheme family
exercises a different engine subsystem and therefore different
emission sites.
"""

import pytest

from repro.experiments.runner import BAR_PROGRAM, bundle_for, config_for
from repro.obs.bus import CollectorSink, EventBus
from repro.obs.events import EPOCH_KINDS
from repro.tlssim.engine import TLSEngine
from repro.workloads import all_workloads

BARS = ("U", "C", "T", "H", "P", "PS", "PC", "B", "E", "L", "O", "SEQ")
WORKLOADS = tuple(w.name for w in all_workloads())

#: machine-model points for the parameterized-machine identity matrix
MACHINE_POINTS = (
    {"num_cores": 2},
    {"num_cores": 8, "signal_buffer_entries": 4},
)
MACHINE_WORKLOADS = ("go", "m88ksim", "gzip_decomp")


def _stream(program, config, oracle, parallel):
    bus = EventBus()
    collector = bus.attach(CollectorSink())
    result = TLSEngine(
        program, config=config, oracle=oracle, parallel=parallel, obs=bus
    ).run()
    return [e.key() for e in collector.events], result


@pytest.mark.parametrize("backend", ("tuples", "vector"))
@pytest.mark.parametrize("name", WORKLOADS)
def test_event_streams_identical_on_every_bar(name, backend):
    bundle = bundle_for(name)
    for bar in BARS:
        program = bundle.program(bar)
        config = config_for(bar)
        oracle = None
        if config.oracle_mode != "off":
            oracle = bundle.oracle_for(BAR_PROGRAM[bar])
        parallel = bar != "SEQ"
        fast_stream, fast_result = _stream(
            program,
            config.with_mode(fast_path=True, backend=backend),
            oracle, parallel,
        )
        slow_stream, slow_result = _stream(
            program, config.with_mode(fast_path=False), oracle, parallel
        )
        fast_epoch = [k for k in fast_stream if k[0] in EPOCH_KINDS]
        slow_epoch = [k for k in slow_stream if k[0] in EPOCH_KINDS]
        assert fast_epoch == slow_epoch, (
            f"{name}/{bar}: epoch-level event streams diverged ({backend})"
        )
        assert fast_stream == slow_stream, (
            f"{name}/{bar}: full event streams diverged ({backend})"
        )
        # attaching the bus must not perturb the simulation itself
        assert fast_result.to_state() == slow_result.to_state(), (
            f"{name}/{bar}: results diverged with the bus attached ({backend})"
        )


@pytest.mark.parametrize("backend", ("tuples", "vector"))
@pytest.mark.parametrize("machine", MACHINE_POINTS, ids=lambda m: "-".join(
    f"{k}{v}" for k, v in sorted(m.items())
))
@pytest.mark.parametrize("name", MACHINE_WORKLOADS)
def test_event_streams_identical_off_default_machine(name, machine, backend):
    """Byte-identity holds away from the paper's 4-core default too.

    The machine-model axes (core count, SAB capacity) change the
    schedule, so this pins the fast/slow contract at the sweep lab's
    off-default points — the prediction bars included, since the
    predictors are the other new emission sites.
    """
    bundle = bundle_for(name)
    for bar in ("U", "P", "PS", "PC"):
        program = bundle.program(bar)
        config = config_for(bar).with_mode(**machine)
        fast_stream, fast_result = _stream(
            program,
            config.with_mode(fast_path=True, backend=backend),
            None, True,
        )
        slow_stream, slow_result = _stream(
            program, config.with_mode(fast_path=False), None, True
        )
        assert fast_stream == slow_stream, (
            f"{name}/{bar}: event streams diverged at {machine} ({backend})"
        )
        assert fast_result.to_state() == slow_result.to_state(), (
            f"{name}/{bar}: results diverged at {machine} ({backend})"
        )


def test_bus_does_not_change_results():
    """A collector-observed run equals an unobserved run bit for bit."""
    bundle = bundle_for("go")
    program = bundle.program("C")
    config = config_for("C")
    _, observed = _stream(program, config, None, True)
    plain = TLSEngine(program, config=config, parallel=True).run()
    assert observed.to_state() == plain.to_state()
