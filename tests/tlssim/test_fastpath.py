"""The fast path must be invisible: identical results, bit for bit.

The decoded-dispatch / free-running-turn / event-heap execution layer
(``SimConfig.fast_path``, on by default) is a pure implementation
optimization, and so is the fused-region vector backend layered on
top of it (``SimConfig.backend="vector"``).  These tests run every
workload under every bar label with each fast backend against
``fast_path=False`` on the same compiled program and require the full
serialized :class:`SimResult` — cycles, slot breakdowns, violation
records, memory checksum — plus the dynamic instruction count to
match exactly.

The matrix deliberately spans every scheme family because each one
exercises a different engine subsystem: U/O squash-heavy speculation,
C/T/B/E/L the wait/signal forwarding and signal address buffer, H/P
the hardware sync table and value predictor, SEQ the sequential loop.
"""

import pytest

from repro.experiments.runner import BAR_PROGRAM, bundle_for, config_for
from repro.tlssim.engine import TLSEngine
from repro.workloads import all_workloads

BARS = ("U", "C", "T", "H", "P", "B", "E", "L", "O", "SEQ")
WORKLOADS = tuple(w.name for w in all_workloads())


def _run(program, config, oracle, parallel):
    engine = TLSEngine(program, config=config, oracle=oracle, parallel=parallel)
    result = engine.run()
    return result, engine


@pytest.mark.parametrize("backend", ("tuples", "vector"))
@pytest.mark.parametrize("name", WORKLOADS)
def test_fast_path_equivalent_on_every_bar(name, backend):
    bundle = bundle_for(name)
    for bar in BARS:
        program = bundle.program(bar)
        config = config_for(bar)
        oracle = None
        if config.oracle_mode != "off":
            oracle = bundle.oracle_for(BAR_PROGRAM[bar])
        parallel = bar != "SEQ"
        fast_result, fast_engine = _run(
            program,
            config.with_mode(fast_path=True, backend=backend),
            oracle, parallel,
        )
        slow_result, slow_engine = _run(
            program, config.with_mode(fast_path=False), oracle, parallel
        )
        assert fast_result.to_state() == slow_result.to_state(), (
            f"{name}/{bar}: fast path ({backend}) diverged"
        )
        assert fast_engine.instructions == slow_engine.instructions, (
            f"{name}/{bar}: dynamic instruction counts differ ({backend})"
        )
