"""Hybrid refinements: channel filtering and persistent table hints."""

from repro.tlssim.config import SimConfig
from repro.tlssim.engine import TLSEngine
from repro.tlssim.hwsync import ViolatingLoadTable

from tests.tlssim.test_engine_sync import make_protocol_loop


class TestPersistentHints:
    def test_persistent_entries_survive_reset(self):
        table = ViolatingLoadTable(threshold=1, reset_interval=2, persistent={7})
        table.record_violation(7)
        table.record_violation(8)
        table.on_commit()
        table.on_commit()  # triggers the reset
        assert table.is_tracked(7)
        assert not table.is_tracked(8)
        assert table.resets == 1

    def test_engine_wires_sync_loads_as_hints(self):
        module = make_protocol_loop(iters=8)
        engine = TLSEngine(
            module, config=SimConfig().with_mode(hw_hint_persistent=True)
        )
        assert engine.hw_table.persistent == frozenset(module.sync_loads)

    def test_hints_off_by_default(self):
        module = make_protocol_loop(iters=8)
        engine = TLSEngine(module, config=SimConfig())
        assert engine.hw_table.persistent == frozenset()


class TestChannelFilter:
    def test_useful_channel_not_filtered(self):
        """The protocol loop's forwards always match: filter stays off
        and the synchronized execution stays violation-free."""
        module = make_protocol_loop(iters=40)
        config = SimConfig().with_mode(hybrid_filter=True)
        result = TLSEngine(module, config=config).run()
        plain = TLSEngine(module, config=SimConfig()).run()
        assert result.return_value == plain.return_value
        assert len(result.regions[0].violations) <= len(
            plain.regions[0].violations
        ) + 1
        # the channel accumulated successful checks
        engine = TLSEngine(module, config=config)
        engine.run()
        (stats,) = engine.channel_stats.values()
        assert stats[1] / stats[0] > 0.5

    def test_mismatching_channel_gets_filtered(self):
        """A channel whose forwarded address never matches is dropped
        once enough checks have failed — and execution stays correct."""
        from tests.tlssim.conftest import make_counted_loop
        # Hand-build a rotating-slot consumer whose check always fails.
        def body(fb):
            # producer: store slot i%4 (lines apart), signal it
            phase = fb.mod("i", 4)
            w = fb.mul(phase, 8)
            waddr = fb.add("@slots4", w)
            fb.store(waddr, "i")
            fb.signal("mem:r", waddr, kind="addr")
            fb.signal("mem:r", "i", kind="value")
            # consumer: guarded load of the slot stored two epochs ago
            rbase = fb.add("i", 2)
            rphase = fb.mod(rbase, 4)
            r = fb.mul(rphase, 8)
            raddr = fb.add("@slots4", r)
            f_addr = fb.wait("mem:r", kind="addr")
            fb.check(f_addr, raddr)
            f_val = fb.wait("mem:r", kind="value")
            m_val = fb.load(raddr)
            fb.select(f_val, m_val)
            fb.resume()

        module = make_counted_loop(
            iters=60,
            body=body,
            globals_spec=[("slots4", 32, None)],
            mem_channels=["mem:r"],
            filler=40,
        )
        filtered_engine = TLSEngine(
            module,
            config=SimConfig().with_mode(
                hybrid_filter=True, filter_min_samples=8
            ),
        )
        filtered = filtered_engine.run()
        plain = TLSEngine(module, config=SimConfig()).run()
        assert filtered.return_value == plain.return_value
        stats = filtered_engine.channel_stats["mem:r"]
        assert stats[0] >= 8
        assert stats[1] / stats[0] < 0.2  # the addresses never match
