"""Machine-model parameterization: validation, threading, fallbacks.

The sweep lab leans on :class:`MachineConfig` rejecting nonsense
configurations *before* any simulation runs, with messages precise
enough to act on — each rejection here pins its message.  The
threading tests check the machine slice actually reaches the engine's
subsystems (caches, forwarding, SAB), and the dyadic-gate test pins
the satellite rule that a non-power-of-two issue width *falls back*
to the tuple backend instead of raising.
"""

import pytest

from repro.tlssim.config import (
    MACHINE_FIELDS,
    PAPER_MACHINE,
    MachineConfig,
    SimConfig,
)
from repro.tlssim.engine import TLSEngine
from repro.tlssim.forwarding import SignalAddressBuffer


class TestMachineConfigValidation:
    def test_default_is_the_paper_machine(self):
        machine = MachineConfig()
        assert machine.num_cores == 4
        assert machine.issue_width == 4
        assert machine.signal_buffer_entries == 10
        assert machine == PAPER_MACHINE

    @pytest.mark.parametrize("cores", (0, -1, 65))
    def test_core_count_bounds(self, cores):
        with pytest.raises(ValueError, match="num_cores must be between"):
            MachineConfig(num_cores=cores)
        with pytest.raises(ValueError, match=f"got {cores}"):
            MachineConfig(num_cores=cores)

    def test_zero_size_signal_buffer(self):
        with pytest.raises(
            ValueError, match="signal_buffer_entries must be >= 1"
        ):
            MachineConfig(signal_buffer_entries=0)

    def test_non_power_of_two_cache_line(self):
        with pytest.raises(ValueError, match="must be a power of two"):
            MachineConfig(words_per_line=6)

    @pytest.mark.parametrize("lines_field", ("l1_lines", "l2_lines"))
    def test_cache_needs_at_least_one_line(self, lines_field):
        with pytest.raises(ValueError, match=f"{lines_field} must be >= 1"):
            MachineConfig(**{lines_field: 0})

    def test_negative_latency(self):
        with pytest.raises(ValueError, match="lat_l1 must be >= 0"):
            MachineConfig(lat_l1=-1)

    def test_non_power_of_two_issue_width_is_legal(self):
        # the vector backend falls back for these; validation lets
        # them through so the tuple backend can model them
        machine = MachineConfig(issue_width=3)
        assert machine.issue_width == 3
        with pytest.raises(ValueError, match="issue_width must be >= 1"):
            MachineConfig(issue_width=0)

    def test_simconfig_validates_its_machine_slice(self):
        with pytest.raises(ValueError, match="num_cores must be between"):
            SimConfig(num_cores=0)
        with pytest.raises(
            ValueError, match="signal_buffer_entries must be >= 1"
        ):
            SimConfig(signal_buffer_entries=0)

    def test_round_trip_through_simconfig(self):
        machine = MachineConfig(num_cores=8, signal_buffer_entries=4)
        config = SimConfig().with_machine(machine)
        assert config.machine == machine
        assert MachineConfig.from_config(config) == machine
        # non-machine fields unchanged
        assert config.prediction == SimConfig().prediction

    def test_machine_fields_cover_the_dataclass(self):
        assert set(MACHINE_FIELDS) == {
            name for name in MachineConfig.__dataclass_fields__
        }
        # every machine field exists on SimConfig under the same name
        default = SimConfig()
        for name in MACHINE_FIELDS:
            assert hasattr(default, name)

    def test_machine_property_is_idempotent(self):
        machine = MachineConfig(num_cores=2)
        assert machine.machine is machine


class TestSignalAddressBufferCapacity:
    @pytest.mark.parametrize("capacity", (0, -3))
    def test_rejects_zero_or_negative_capacity(self, capacity):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            SignalAddressBuffer(capacity)

    def test_for_machine_uses_the_configured_entries(self):
        sab = SignalAddressBuffer.for_machine(
            MachineConfig(signal_buffer_entries=3)
        )
        assert sab.capacity == 3


class TestMachineThreading:
    """The machine slice must actually reach the engine subsystems."""

    @pytest.fixture(scope="class")
    def bundle(self):
        from repro.experiments.runner import bundle_for

        return bundle_for("go")

    def test_engine_holds_the_machine_slice(self, bundle):
        config = SimConfig(num_cores=2, signal_buffer_entries=4)
        engine = TLSEngine(
            bundle.program("U"), config=config, parallel=True
        )
        assert engine.machine.num_cores == 2
        assert engine.machine.signal_buffer_entries == 4
        assert engine.caches.machine.num_cores == 2

    def test_core_count_changes_the_schedule(self, bundle):
        program = bundle.program("U")
        results = {
            cores: TLSEngine(
                program, config=SimConfig(num_cores=cores), parallel=True
            ).run().program_cycles
            for cores in (1, 2, 4)
        }
        assert len(set(results.values())) > 1, (
            f"core count had no effect: {results}"
        )

    def test_sab_capacity_changes_behavior_or_is_benign(self, bundle):
        """A 1-entry SAB must simulate; usually it costs cycles."""
        program = bundle.program("C")
        tiny = TLSEngine(
            program, config=SimConfig(signal_buffer_entries=1),
            parallel=True,
        ).run()
        default = TLSEngine(
            program, config=SimConfig(), parallel=True
        ).run()
        assert tiny.program_cycles >= default.program_cycles

    def test_non_power_of_two_issue_width_falls_back_not_raises(
        self, bundle
    ):
        from repro.ir import lower as lower_mod

        config = SimConfig(
            issue_width=3, fast_path=True, backend="vector"
        )
        reason = lower_mod.unavailable_reason(config)
        if reason == "numpy unavailable":
            pytest.skip("vector backend not built here")
        assert reason is not None and "issue width" in reason
        engine = TLSEngine(bundle.program("U"), config=config, parallel=True)
        assert engine.backend == "tuples"
        tuples = TLSEngine(
            bundle.program("U"),
            config=config.with_mode(backend="tuples"),
            parallel=True,
        ).run()
        assert engine.run().to_state() == tuples.to_state()
