"""Value-oracle collection and lookup alignment."""

from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import Load
from repro.ir.module import ParallelLoop
from repro.tlssim.oracle import collect_oracle


def build(iters=5):
    mb = ModuleBuilder()
    mb.global_var("acc", 1, init=100)
    fb = mb.function("main")
    fb.block("entry")
    fb.const(0, dest="i")
    fb.jump("loop")
    fb.block("loop")
    v = fb.load("@acc")       # first load of acc
    v2 = fb.add(v, "i")
    fb.store("@acc", v2)
    fb.load("@acc")           # second (distinct) load instruction
    fb.add("i", 1, dest="i")
    c = fb.binop("lt", "i", iters)
    fb.condbr(c, "loop", "done")
    fb.block("done")
    fb.ret(0)
    module = mb.build()
    module.parallel_loops.append(ParallelLoop(function="main", header="loop"))
    loads = [
        i for i in module.function("main").instructions() if isinstance(i, Load)
    ]
    return module, loads


class TestOracle:
    def test_records_per_epoch_values(self):
        module, loads = build(iters=4)
        oracle = collect_oracle(module)
        first_load = loads[0].iid
        # acc starts at 100; epoch e loads 100 + sum(0..e-1)
        assert oracle.lookup(0, 0, first_load, 0) == 100
        assert oracle.lookup(0, 1, first_load, 0) == 100
        assert oracle.lookup(0, 2, first_load, 0) == 101
        assert oracle.lookup(0, 3, first_load, 0) == 103

    def test_second_static_load_recorded_separately(self):
        module, loads = build(iters=3)
        oracle = collect_oracle(module)
        second_load = loads[1].iid
        # the second load sees the freshly stored value
        assert oracle.lookup(0, 0, second_load, 0) == 100
        assert oracle.lookup(0, 1, second_load, 0) == 101

    def test_missing_entries_return_none(self):
        module, loads = build(iters=3)
        oracle = collect_oracle(module)
        assert oracle.lookup(0, 99, loads[0].iid, 0) is None
        assert oracle.lookup(5, 0, loads[0].iid, 0) is None
        assert oracle.lookup(0, 0, 999999, 0) is None
        assert oracle.lookup(0, 0, loads[0].iid, 7) is None

    def test_region_count(self):
        module, _ = build()
        assert collect_oracle(module).region_count == 1

    def test_no_regions_no_data(self):
        module, _ = build()
        module.parallel_loops = []
        oracle = collect_oracle(module)
        assert oracle.region_count == 0
