"""Value-predictor schemes: stride, context (FCM), and the registry.

Last-value prediction is pinned in ``test_components.py``; these
tests cover the two schemes the sweep lab adds and the registry that
makes them selectable per bar (``PS`` / ``PC``) and per sweep axis
(``predictor=...``).  The discipline shared by all three — predict
only above the confidence threshold, train on every commit — is what
keeps mispredictions surfacing as ordinary violations.
"""

import pytest

from repro.tlssim.prediction import (
    PREDICTORS,
    ContextPredictor,
    LastValuePredictor,
    StridePredictor,
    make_predictor,
)


class TestStridePredictor:
    def test_predicts_the_next_stride_step(self):
        predictor = StridePredictor(confidence_threshold=2)
        for value in (10, 14, 18, 22):  # stride 4, confirmed 3x
            predictor.train("load", value)
        assert predictor.predict("load") == 26

    def test_no_prediction_before_confidence(self):
        predictor = StridePredictor(confidence_threshold=2)
        predictor.train("load", 10)
        predictor.train("load", 14)  # first stride observation
        assert predictor.predict("load") is None

    def test_constant_values_are_a_zero_stride(self):
        predictor = StridePredictor(confidence_threshold=2)
        for _ in range(4):
            predictor.train("load", 7)
        assert predictor.predict("load") == 7

    def test_stride_change_resets_confidence(self):
        predictor = StridePredictor(confidence_threshold=2)
        for value in (10, 14, 18, 22):
            predictor.train("load", value)
        assert predictor.predict("load") is not None
        predictor.train("load", 100)  # stride breaks
        assert predictor.predict("load") is None

    def test_capacity_is_bounded(self):
        predictor = StridePredictor(size=2, confidence_threshold=1)
        for load in ("a", "b", "c"):  # "a" evicted
            for value in (1, 2, 3):  # stride 1, confirmed once
                predictor.train(load, value)
        assert predictor.predict("b") is not None
        assert predictor.predict("a") is None


class TestContextPredictor:
    def test_learns_a_repeating_pattern(self):
        predictor = ContextPredictor(confidence_threshold=1, order=2)
        # pattern 1,2,3 repeating: context (2,3) -> 1, etc.
        for value in (1, 2, 3, 1, 2, 3, 1, 2, 3):
            predictor.train("load", value)
        # history is now (2, 3); the confident follower is 1
        assert predictor.predict("load") == 1

    def test_stride_sequences_are_not_its_job(self):
        predictor = ContextPredictor(confidence_threshold=1, order=2)
        for value in (10, 14, 18, 22):  # every context unique
            predictor.train("load", value)
        assert predictor.predict("load") is None

    def test_requires_full_order_history(self):
        predictor = ContextPredictor(confidence_threshold=1, order=3)
        predictor.train("load", 1)
        predictor.train("load", 2)
        assert predictor.predict("load") is None

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="order must be >= 1"):
            ContextPredictor(order=0)

    def test_loads_do_not_share_contexts(self):
        predictor = ContextPredictor(confidence_threshold=1, order=1)
        for _ in range(3):
            predictor.train("a", 5)
        assert predictor.predict("a") == 5
        assert predictor.predict("b") is None


class TestRegistry:
    def test_registry_names(self):
        assert set(PREDICTORS) == {"last", "stride", "context"}
        for spec in PREDICTORS.values():
            assert spec.description

    @pytest.mark.parametrize(
        "name,cls",
        (
            ("last", LastValuePredictor),
            ("stride", StridePredictor),
            ("context", ContextPredictor),
        ),
    )
    def test_make_predictor_dispatch(self, name, cls):
        predictor = make_predictor(name, confidence_threshold=1)
        assert isinstance(predictor, cls)
        assert predictor.confidence_threshold == 1

    def test_make_predictor_unknown_name(self):
        with pytest.raises(ValueError, match="unknown predictor 'nope'"):
            make_predictor("nope")

    def test_simconfig_gates_the_predictor_field(self):
        from repro.tlssim.config import SimConfig

        assert SimConfig(predictor="stride").predictor == "stride"
        with pytest.raises(ValueError, match="unknown predictor"):
            SimConfig(predictor="nope")

    def test_outcome_counters(self):
        predictor = make_predictor("stride", confidence_threshold=1)
        predictor.record_outcome(True, "load")
        predictor.record_outcome(False, "load")
        assert predictor.predictions_used == 2
        assert predictor.mispredictions == 1


class TestBarWiring:
    def test_prediction_bars_select_the_scheme(self):
        from repro.experiments.runner import config_for

        assert config_for("P").predictor == "last"
        assert config_for("PS").predictor == "stride"
        assert config_for("PC").predictor == "context"
        for bar in ("P", "PS", "PC"):
            assert config_for(bar).prediction is True

    def test_p_bar_composes_with_a_swept_predictor(self):
        """P inherits the base predictor — the sweep axis wins."""
        from repro.experiments.runner import config_for
        from repro.tlssim.config import SimConfig

        base = SimConfig(predictor="context")
        assert config_for("P", base).predictor == "context"

    def test_schemes_diverge_on_a_real_workload(self):
        """The new schemes must be live, not aliases of last-value."""
        from repro.experiments.runner import bundle_for

        bundle = bundle_for("m88ksim")
        cycles = {
            bar: bundle.simulate(bar).program_cycles
            for bar in ("P", "PS", "PC")
        }
        assert len(set(cycles.values())) > 1, (
            f"predictor schemes all identical: {cycles}"
        )
