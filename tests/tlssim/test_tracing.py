"""Engine tracing and timeline rendering."""

from repro.tlssim.engine import TLSEngine
from repro.tlssim.tracing import Tracer, render_timeline

from tests.tlssim.conftest import make_counted_loop


def traced_run(module):
    tracer = Tracer()
    result = TLSEngine(module, tracer=tracer).run()
    return tracer, result


class TestTracer:
    def test_region_boundaries(self):
        tracer, _ = traced_run(make_counted_loop(iters=10, filler=20))
        assert len(tracer.of_kind("region_start")) == 1
        assert len(tracer.of_kind("region_end")) == 1
        start = tracer.of_kind("region_start")[0]
        end = tracer.of_kind("region_end")[0]
        assert start.time <= end.time

    def test_commit_per_epoch(self):
        tracer, _ = traced_run(make_counted_loop(iters=10, filler=20))
        commits = tracer.of_kind("commit")
        assert sorted(e.epoch for e in commits)[:10] == list(range(10))

    def test_runs_pair_starts_with_ends(self):
        tracer, _ = traced_run(make_counted_loop(iters=10, filler=20))
        runs = tracer.runs()
        assert len(runs) >= 10
        for _epoch, _gen, core, start, end, _committed in runs:
            assert 0 <= core < 4
            assert end >= start

    def test_violations_and_squashes_traced(self):
        def body(fb):
            v = fb.load("@shared")
            fb.store("@shared", fb.add(v, 1))

        module = make_counted_loop(
            iters=20, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )
        tracer, _ = traced_run(module)
        assert tracer.of_kind("violation")
        squashed = [r for r in tracer.runs() if not r[5]]
        assert squashed
        # every squashed generation is eventually recommitted
        committed_epochs = {r[0] for r in tracer.runs() if r[5]}
        assert set(range(20)) <= committed_epochs

    def test_tracing_does_not_change_results(self):
        module = make_counted_loop(iters=15, filler=25)
        _, traced = traced_run(module)
        plain = TLSEngine(module).run()
        assert traced.return_value == plain.return_value
        assert traced.program_cycles == plain.program_cycles


class TestTimeline:
    def test_renders_rows_per_core(self):
        tracer, _ = traced_run(make_counted_loop(iters=12, filler=25))
        art = render_timeline(tracer, width=60)
        lines = art.splitlines()
        assert len(lines) == 5  # header + 4 cores
        assert lines[1].startswith("core 0 |")
        assert "=" in art

    def test_empty_tracer(self):
        assert "no epoch runs" in render_timeline(Tracer())

    def test_max_epoch_filter(self):
        tracer, _ = traced_run(make_counted_loop(iters=12, filler=25))
        short = render_timeline(tracer, width=60, max_epoch=3)
        full = render_timeline(tracer, width=60)
        assert short != full

    def test_squashes_drawn_differently(self):
        def body(fb):
            v = fb.load("@shared")
            fb.store("@shared", fb.add(v, 1))

        module = make_counted_loop(
            iters=20, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )
        tracer, _ = traced_run(module)
        art = render_timeline(tracer, width=70)
        assert "x" in art and "=" in art
