"""Engine tracing and timeline rendering."""

from repro.tlssim.engine import TLSEngine
from repro.tlssim.tracing import TraceEvent, Tracer, render_timeline

from tests.tlssim.conftest import make_counted_loop


def traced_run(module):
    tracer = Tracer()
    result = TLSEngine(module, tracer=tracer).run()
    return tracer, result


class TestTracer:
    def test_region_boundaries(self):
        tracer, _ = traced_run(make_counted_loop(iters=10, filler=20))
        assert len(tracer.of_kind("region_start")) == 1
        assert len(tracer.of_kind("region_end")) == 1
        start = tracer.of_kind("region_start")[0]
        end = tracer.of_kind("region_end")[0]
        assert start.time <= end.time

    def test_commit_per_epoch(self):
        tracer, _ = traced_run(make_counted_loop(iters=10, filler=20))
        commits = tracer.of_kind("commit")
        assert sorted(e.epoch for e in commits)[:10] == list(range(10))

    def test_runs_pair_starts_with_ends(self):
        tracer, _ = traced_run(make_counted_loop(iters=10, filler=20))
        runs = tracer.runs()
        assert len(runs) >= 10
        for _epoch, _gen, core, start, end, _committed in runs:
            assert 0 <= core < 4
            assert end >= start

    def test_violations_and_squashes_traced(self):
        def body(fb):
            v = fb.load("@shared")
            fb.store("@shared", fb.add(v, 1))

        module = make_counted_loop(
            iters=20, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )
        tracer, _ = traced_run(module)
        assert tracer.of_kind("violation")
        squashed = [r for r in tracer.runs() if not r[5]]
        assert squashed
        # every squashed generation is eventually recommitted
        committed_epochs = {r[0] for r in tracer.runs() if r[5]}
        assert set(range(20)) <= committed_epochs

    def test_tracing_does_not_change_results(self):
        module = make_counted_loop(iters=15, filler=25)
        _, traced = traced_run(module)
        plain = TLSEngine(module).run()
        assert traced.return_value == plain.return_value
        assert traced.program_cycles == plain.program_cycles


class TestTimeline:
    def test_renders_rows_per_core(self):
        tracer, _ = traced_run(make_counted_loop(iters=12, filler=25))
        art = render_timeline(tracer, width=60)
        lines = art.splitlines()
        assert len(lines) == 5  # header + 4 cores
        assert lines[1].startswith("core 0 |")
        assert "=" in art

    def test_empty_tracer(self):
        assert "no epoch runs" in render_timeline(Tracer())

    def test_max_epoch_filter(self):
        tracer, _ = traced_run(make_counted_loop(iters=12, filler=25))
        short = render_timeline(tracer, width=60, max_epoch=3)
        full = render_timeline(tracer, width=60)
        assert short != full

    def test_squashes_drawn_differently(self):
        def body(fb):
            v = fb.load("@shared")
            fb.store("@shared", fb.add(v, 1))

        module = make_counted_loop(
            iters=20, body=body, globals_spec=[("shared", 1, 0)], filler=40
        )
        tracer, _ = traced_run(module)
        art = render_timeline(tracer, width=70)
        assert "x" in art and "=" in art


def hand_tracer(runs, stalls=()):
    """A Tracer built directly from (epoch, gen, core, start, end,
    committed) run tuples and (epoch, gen, core, start, end) stalls —
    no engine involved, so renderer behaviour is pinned exactly."""
    tracer = Tracer()
    for epoch, gen, core, start, end, committed in runs:
        tracer.epoch_start(epoch, gen, core, start)
        if committed:
            tracer.commit(epoch, gen, core, end)
        else:
            tracer.squash(epoch, gen, core, end, "store")
    for epoch, gen, core, start, end in stalls:
        tracer.events.append(
            TraceEvent("stall_start", start, epoch, gen, core)
        )
        if end is not None:
            tracer.events.append(
                TraceEvent("stall_end", end, epoch, gen, core)
            )
    return tracer


class TestTimelineDirect:
    """Renderer unit tests over hand-built traces."""

    def test_stall_overdrawn_as_tilde(self):
        tracer = hand_tracer(
            runs=[(0, 0, 0, 0.0, 100.0, True)],
            stalls=[(0, 0, 0, 25.0, 75.0)],
        )
        art = render_timeline(tracer, width=40, num_cores=1)
        row = art.splitlines()[1]
        assert "~" in row and "=" in row
        # the stall sits strictly inside the run, not at its edges
        fill = row.split("|")[1]
        assert fill.strip()[0] != "~" and fill.strip()[-1] != "~"

    def test_open_stall_clipped_to_run_end(self):
        tracer = hand_tracer(
            runs=[(0, 0, 0, 0.0, 50.0, False)],
            stalls=[(0, 0, 0, 40.0, None)],  # squashed mid-stall
        )
        art = render_timeline(tracer, width=40, num_cores=1)
        assert "~" in art

    def test_stall_outside_run_extent_ignored(self):
        tracer = hand_tracer(
            runs=[(0, 0, 0, 0.0, 50.0, True)],
            stalls=[(9, 0, 0, 10.0, 20.0)],  # no such run
        )
        assert "~" not in render_timeline(tracer, width=40, num_cores=1)

    def test_zero_committed_epochs_tolerated(self):
        tracer = hand_tracer(
            runs=[(0, 0, 0, 0.0, 30.0, False), (1, 0, 1, 5.0, 30.0, False)]
        )
        art = render_timeline(tracer, width=40, num_cores=2)
        body = "\n".join(art.splitlines()[1:])
        assert "x" in body and "=" not in body

    def test_non_finite_runs_filtered(self):
        tracer = hand_tracer(runs=[(0, 0, 0, 0.0, 60.0, True)])
        tracer.epoch_start(1, 0, 1, float("-inf"))
        tracer.commit(1, 0, 1, 10.0)
        art = render_timeline(tracer, width=40, num_cores=2)
        assert art.splitlines()[0].startswith("t=0")

    def test_all_runs_non_finite_yields_placeholder(self):
        tracer = Tracer()
        tracer.epoch_start(0, 0, 0, float("-inf"))
        tracer.commit(0, 0, 0, float("inf"))
        assert "no epoch runs" in render_timeline(tracer)

    def test_num_cores_overrides_row_count(self):
        tracer = hand_tracer(runs=[(0, 0, 0, 0.0, 10.0, True)])
        art = render_timeline(tracer, width=40, num_cores=3)
        assert len(art.splitlines()) == 4  # header + 3 cores


class TestStallQuery:
    def test_closed_pair(self):
        tracer = hand_tracer(
            runs=[(0, 0, 0, 0.0, 100.0, True)],
            stalls=[(0, 0, 0, 10.0, 30.0)],
        )
        assert tracer.stalls() == [(0, 0, 0, 10.0, 30.0)]

    def test_run_end_closes_open_stall_with_none(self):
        tracer = Tracer()
        tracer.epoch_start(0, 0, 0, 0.0)
        tracer.events.append(TraceEvent("stall_start", 10.0, 0, 0, 0))
        tracer.squash(0, 0, 0, 40.0, "store")
        assert tracer.stalls() == [(0, 0, 0, 10.0, None)]

    def test_trailing_open_stall_reported(self):
        tracer = Tracer()
        tracer.epoch_start(0, 0, 0, 0.0)
        tracer.events.append(TraceEvent("stall_start", 5.0, 0, 0, 0))
        assert tracer.stalls() == [(0, 0, 0, 5.0, None)]
