"""Workload infrastructure: input generation and builder scaffolding."""

import pytest

from repro.ir.interpreter import run_module
from repro.ir.verifier import verify_module
from repro.workloads.base import (
    SLOT_STRIDE,
    Workload,
    add_result_slots,
    emit_filler,
    emit_slot_store,
    lcg_stream,
    register,
    standard_region,
)
from repro.ir.builder import ModuleBuilder


class TestLcgStream:
    def test_deterministic(self):
        assert lcg_stream(42, 50, 100) == lcg_stream(42, 50, 100)

    def test_seed_changes_stream(self):
        assert lcg_stream(1, 50, 100) != lcg_stream(2, 50, 100)

    def test_range(self):
        for value in lcg_stream(7, 200, 13):
            assert 0 <= value < 13

    def test_low_bits_not_cyclic(self):
        """Regression: naive LCG low bits cycle with period <= 4, which
        turned probabilistic conditions into strict round-robins."""
        values = lcg_stream(11, 64, 4)
        period4 = all(
            values[i] == values[i % 4] for i in range(len(values))
        )
        assert not period4

    def test_roughly_uniform(self):
        values = lcg_stream(3, 4000, 10)
        counts = [values.count(b) for b in range(10)]
        assert min(counts) > 250 and max(counts) < 550

    def test_bad_mod_rejected(self):
        with pytest.raises(ValueError):
            lcg_stream(1, 5, 0)


class TestScaffolding:
    def build(self, iters=10):
        mb = ModuleBuilder()
        add_result_slots(mb, iters)

        def body(fb):
            value = emit_filler(fb, 8, salt=3)
            mixed = fb.add(value, "i")
            emit_slot_store(fb, mixed)

        standard_region(mb, iters, body)
        return mb.build()

    def test_verifies_and_runs(self):
        module = self.build()
        verify_module(module)
        result = run_module(module)
        assert result.return_value is not None

    def test_reduction_covers_every_slot(self):
        """Changing any epoch's deposit changes the program result."""
        base = run_module(self.build()).return_value
        mb = ModuleBuilder()
        add_result_slots(mb, 10)

        def body(fb):
            value = emit_filler(fb, 8, salt=3)
            mixed = fb.add(value, "i")
            bumped = fb.add(mixed, 1)  # perturb every deposit
            emit_slot_store(fb, bumped)

        standard_region(mb, 10, body)
        assert run_module(mb.build()).return_value != base

    def test_slots_are_a_line_apart(self):
        assert SLOT_STRIDE == 8  # one 32B line in words

    def test_filler_length(self):
        mb = ModuleBuilder()
        fb = mb.function("main")
        fb.block("entry")
        emit_filler(fb, 25, salt=1)
        fb.ret(0)
        assert mb.module.function("main").instruction_count() == 25 + 1

    def test_register_validation(self):
        with pytest.raises(ValueError, match="coverage"):
            register(
                Workload(
                    name="bogus",
                    spec_name="x",
                    build=lambda spec: None,
                    train_input=1,
                    ref_input=2,
                    coverage=1.5,
                    seq_overhead=0.9,
                    description="d",
                )
            )

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register(
                Workload(
                    name="go",  # already registered
                    spec_name="x",
                    build=lambda spec: None,
                    train_input=1,
                    ref_input=2,
                    coverage=0.5,
                    seq_overhead=0.9,
                    description="d",
                )
            )
