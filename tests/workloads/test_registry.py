"""Workload registry: metadata, buildability, determinism."""

import pytest

from repro.ir.basicblock import deterministic_iids
from repro.ir.interpreter import run_module
from repro.ir.verifier import verify_module
from repro.workloads import all_workloads, get_workload

EXPECTED = [
    "go", "m88ksim", "ijpeg", "gzip_comp", "gzip_decomp", "vpr_place",
    "gcc", "mcf", "crafty", "parser", "perlbmk", "gap",
    "bzip2_comp", "bzip2_decomp", "twolf",
]


class TestRegistry:
    def test_all_fifteen_registered_in_table2_order(self):
        assert [w.name for w in all_workloads()] == EXPECTED

    def test_get_workload(self):
        assert get_workload("go").name == "go"
        with pytest.raises(KeyError):
            get_workload("ghost")

    def test_spec_names_unique(self):
        specs = [w.spec_name for w in all_workloads()]
        assert len(set(specs)) == len(specs)

    def test_metadata_ranges(self):
        for workload in all_workloads():
            assert 0.0 < workload.coverage <= 1.0, workload.name
            assert 0.4 <= workload.seq_overhead <= 1.0, workload.name
            assert workload.description

    def test_distinct_inputs(self):
        for workload in all_workloads():
            assert workload.train_input != workload.ref_input, workload.name


@pytest.mark.parametrize("name", EXPECTED)
class TestBuilders:
    def test_builds_verify(self, name):
        workload = get_workload(name)
        for spec in (workload.train_input, workload.ref_input):
            verify_module(workload.build(spec))

    def test_runs_sequentially(self, name):
        workload = get_workload(name)
        result = run_module(workload.build(workload.ref_input))
        assert result.return_value is not None

    def test_inputs_change_behaviour_not_structure(self, name):
        workload = get_workload(name)
        with deterministic_iids():
            train = workload.build(workload.train_input)
        with deterministic_iids():
            ref = workload.build(workload.ref_input)
        # identical instruction streams (same iids, same counts) ...
        assert train.instruction_count() == ref.instruction_count()
        for fn_name, function in train.functions.items():
            other = ref.function(fn_name)
            assert [i.iid for i in function.instructions()] == [
                i.iid for i in other.instructions()
            ]
        # ... but different data
        train_result = run_module(train)
        ref_result = run_module(ref)
        assert (
            train_result.return_value != ref_result.return_value
            or train_result.memory.checksum() != ref_result.memory.checksum()
        )

    def test_build_is_deterministic(self, name):
        workload = get_workload(name)
        first = run_module(workload.build(workload.ref_input))
        second = run_module(workload.build(workload.ref_input))
        assert first.return_value == second.return_value
        assert first.memory.checksum() == second.memory.checksum()
