"""Per-workload dependence signatures (the paper's qualitative shapes).

These tests pin the *shape* of each benchmark's behaviour — who wins,
roughly by how much — to the paper's Section 4 findings.  Bundles are
compiled once per session (the runner memoizes them), so the whole
module costs one compile+simulate pass per workload.
"""

import pytest

from repro.experiments.runner import bundle_for
from repro.ir.interpreter import run_module


def times(name, bars):
    bundle = bundle_for(name)
    return {bar: bundle.normalized_region(bar)[0] for bar in bars}


def violations(name, bar):
    bundle = bundle_for(name)
    return sum(len(r.violations) for r in bundle.simulate(bar).regions)


class TestCorrectnessEverywhere:
    @pytest.mark.parametrize(
        "name",
        ["go", "m88ksim", "gzip_comp", "parser", "twolf", "mcf"],
    )
    def test_all_bars_match_interpreter(self, name):
        bundle = bundle_for(name)
        expected = run_module(bundle.compiled.seq).return_value
        seq = bundle.simulate("SEQ")
        for bar in ("U", "C", "T", "H", "P", "B", "E", "L", "O"):
            result = bundle.simulate(bar)
            assert result.return_value == expected, (name, bar)
            assert result.memory_checksum == seq.memory_checksum, (name, bar)


class TestCompilerWins:
    """GO, GZIP_DECOMP, PERLBMK, GAP: best with compiler sync (§4.2)."""

    @pytest.mark.parametrize("name", ["go", "gzip_decomp", "perlbmk", "gap"])
    def test_compiler_beats_hardware_and_baseline(self, name):
        t = times(name, ("U", "C", "H"))
        assert t["C"] < t["U"] - 5, t
        assert t["C"] < t["H"] - 5, t

    def test_gzip_decomp_hardware_overserializes(self):
        """The hardware stalls until commit; the compiler forwards
        early — H barely improves on U while C transforms the region."""
        t = times("gzip_decomp", ("U", "C", "H"))
        assert t["C"] < 0.5 * t["U"]
        assert t["H"] > 0.85 * t["U"]


class TestHardwareWins:
    """M88KSIM, VPR_PLACE: best with hardware sync (§4.2)."""

    @pytest.mark.parametrize("name", ["m88ksim", "vpr_place"])
    def test_hardware_beats_compiler(self, name):
        t = times(name, ("U", "C", "H"))
        assert t["H"] < t["C"] - 5, t
        assert t["H"] < t["U"], t

    def test_m88ksim_compiler_blind_to_false_sharing(self):
        """No word-level dependences: the profile is empty, C == U."""
        bundle = bundle_for("m88ksim")
        for groups in bundle.compiled.groups_ref.values():
            assert groups == []
        t = times("m88ksim", ("U", "C"))
        assert abs(t["C"] - t["U"]) < 1.0

    def test_vpr_place_compiler_no_help(self):
        """Table 2 shows vpr region speedup 1.00: C leaves it alone."""
        t = times("vpr_place", ("U", "C"))
        assert abs(t["C"] - t["U"]) < 6.0


class TestNeutralBenchmarks:
    @pytest.mark.parametrize("name", ["ijpeg", "bzip2_decomp"])
    def test_speculation_already_works(self, name):
        """Failed speculation was not a problem to begin with (§4.1)."""
        t = times(name, ("U", "C", "H", "B"))
        assert t["U"] < 40  # strong TLS speedup without any help
        for bar in ("C", "H", "B"):
            assert abs(t[bar] - t["U"]) < 3.0

    def test_twolf_sync_is_pure_overhead(self):
        """§4.2: conservative synchronization degrades TWOLF slightly."""
        t = times("twolf", ("U", "C"))
        assert t["U"] <= t["C"] <= t["U"] + 5.0

    def test_twolf_rarely_violates_unsynchronized(self):
        assert violations("twolf", "U") < 40


class TestInputSensitivity:
    def test_gzip_comp_train_profile_misses_hot_dependence(self):
        """Figure 8: GZIP_COMP is the one benchmark where T != C."""
        t = times("gzip_comp", ("U", "T", "C"))
        assert t["C"] < t["U"] - 10
        assert t["T"] > t["C"] + 10  # train profile synchronized the wrong pair

    @pytest.mark.parametrize("name", ["go", "parser", "gcc", "gap"])
    def test_other_benchmarks_profile_insensitive(self, name):
        t = times(name, ("T", "C"))
        assert abs(t["T"] - t["C"]) < 3.0

    def test_gzip_comp_group_sets_differ(self):
        bundle = bundle_for("gzip_comp")
        key = bundle.compiled.selected[0]
        ref_members = {
            m for g in bundle.compiled.groups_ref[key] for m in g.members
        }
        train_members = {
            m for g in bundle.compiled.groups_train[key] for m in g.members
        }
        assert train_members < ref_members


class TestThresholdStory:
    def test_bzip2_comp_pairs_live_between_5_and_15_percent(self):
        """§2.4: only the 5% threshold catches BZIP2_COMP's pairs."""
        bundle = bundle_for("bzip2_comp")
        profile = next(iter(bundle.compiled.profile_ref.values()))
        frequencies = sorted(
            profile.pair_frequency(pair) for pair in profile.frequent_pairs(0.05)
        )
        assert frequencies, "expected frequent pairs at the 5% threshold"
        assert all(f < 0.25 for f in frequencies)
        assert profile.frequent_pairs(0.15) != profile.frequent_pairs(0.05)

    def test_bzip2_comp_synchronization_transforms_region(self):
        t = times("bzip2_comp", ("U", "C"))
        assert t["C"] < t["U"] - 20


class TestPredictionInsignificant:
    @pytest.mark.parametrize("name", ["go", "gzip_decomp", "gap"])
    def test_prediction_near_baseline(self, name):
        """§4.2: forwarded memory values are unpredictable, P ~= U."""
        t = times(name, ("U", "P"))
        assert abs(t["P"] - t["U"]) < 5.0


class TestParserFreeList:
    def test_cloning_happened(self):
        bundle = bundle_for("parser")
        names = set(bundle.compiled.sync_ref.functions)
        assert any(name.startswith("free_element$sync") for name in names)
        assert any(name.startswith("use_element$sync") for name in names)
        assert any(name.startswith("work$sync") for name in names)

    def test_region_transformed(self):
        t = times("parser", ("U", "C"))
        assert t["C"] < 0.7 * t["U"]
        assert violations("parser", "C") < 0.2 * violations("parser", "U")
